#ifndef SPE_KERNELS_FLAT_FOREST_H_
#define SPE_KERNELS_FLAT_FOREST_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>

#include "spe/kernels/program.h"

namespace spe {

class Classifier;
class DatasetView;
class VotingEnsemble;

namespace kernels {

/// Process-wide kernel switch. Defaults to on; the environment variable
/// SPE_FLAT_KERNEL=0|off|false disables it at startup (same grammar as
/// SPE_OBS), and benches flip it at runtime to measure the reference
/// path and the kernel in one process. When off, VotingEnsemble scores
/// with the reference member loop — results are bit-identical either
/// way, so this knob only changes speed. It is the master switch: with
/// the kernel off, the scoring-mode and SIMD knobs below are moot.
bool FlatKernelEnabled();
void SetFlatKernelEnabled(bool enabled);

/// Numeric representation the flat kernel scores with. Process-wide,
/// like the kernel switch: serving stamps the active mode into its
/// model-version labels at load, so it is set once at startup (env
/// SPE_KERNEL_MODE=f64|f32|binned or spe_serve --kernel-mode), not
/// flipped under traffic. Tests and benches flip it at runtime to
/// compare paths in one process.
///
///  kF64    — default; byte-identical to the reference scoring loop.
///  kF32    — float thresholds/leaves/accumulation ("flat_f32");
///            AUC-parity with f64, not bit parity.
///  kBinned — uint8 bin-rank descent ("flat_binned"); byte-identical
///            to kF64 by construction (see BinnedProgram), falling
///            back to kF64 per-forest when a program cannot lower.
enum class ScoreMode { kF64, kF32, kBinned };

ScoreMode ActiveScoreMode();
void SetScoreMode(ScoreMode mode);

/// "f64" / "f32" / "binned" — the wire/flag spelling of a mode.
const char* ScoreModeName(ScoreMode mode);

/// Parses the wire/flag spelling; returns false (leaving `out` alone)
/// for anything else.
bool ParseScoreMode(std::string_view name, ScoreMode* out);

/// Whether tree descent uses the vectorized gather walk. Requires this
/// binary to be compiled with a SIMD backend (SPE_SIMD=ON /
/// SPE_NATIVE=ON on x86, any build on aarch64 — see spe/kernels/simd.h).
/// The runtime default follows the backend's profitability constant
/// (kGatherDescentProfitable): on by default for NEON, off for AVX2,
/// where hardware gathers cost one load uop per lane and measure slower
/// than the blocked scalar walk. Env SPE_SIMD=1|on|true (or
/// SetSimdEnabled(true)) forces the gather walk on a SIMD build — the
/// conformance suite does this to cover it on x86 — and
/// SPE_SIMD=0|off|false forces the scalar walk everywhere. Vectorized
/// and scalar walks compute identical leaf indices, so this knob — like
/// the kernel switch — only changes speed, never results.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

/// Instruction set the kernel TU was compiled against: "avx2", "neon"
/// or "scalar". Compile-time fact, independent of the runtime switch;
/// benches stamp it so numbers are attributable to hardware.
const char* SimdIsa();

/// A voting ensemble compiled for batch inference: every member's trees
/// flattened into one structure-of-arrays node pool plus a member
/// program (see spe/kernels/program.h), walked by a blocked row×tree
/// kernel. The kernel reproduces the reference scoring loop
/// (VotingEnsemble::PredictProbaPrefix) bit-for-bit: members accumulate
/// in index order, GBDT members replay base + lr·leaf per tree then the
/// same sigmoid, and NaN feature values take the right edge exactly
/// like the reference `x <= threshold` comparison. What changes is the
/// memory traffic: zero per-member temporaries, contiguous node
/// storage, and ~64-row blocks whose descent steps are independent, so
/// the CPU overlaps the tree-walk loads instead of serializing on one
/// row's pointer chase.
///
/// v2 scores the same program through three representations, selected
/// by ActiveScoreMode(): the f64 pool (bit-identical, with an optional
/// vectorized descent that is also bit-identical), a float mirror
/// (F32Program), and a uint8 bin-rank mirror (BinnedProgram). The
/// mirrors are derived lazily on first use and cached per forest.
class FlatForest {
 public:
  /// Lowers every member of `ensemble` (discovered via FlatCompilable)
  /// into one program. Returns nullptr when the ensemble is empty or
  /// any member cannot lower — callers fall back to the reference loop.
  static std::unique_ptr<const FlatForest> Compile(
      const VotingEnsemble& ensemble);

  /// Lowers `ensemble` into a kGroup member op of an enclosing program.
  /// This is how nested tree-backed ensembles (a RandomForest member
  /// inside an SPE forest) compile: the wrapper's FlatCompilable
  /// delegates here. Returns false when any member cannot lower; the
  /// program is then abandoned by the caller.
  static bool LowerEnsemble(const VotingEnsemble& ensemble,
                            FlatProgram& program, MemberOp& op);

  /// Mean probability over the first min(k, num_members()) members for
  /// every row of `data`, written to `out` (size must equal
  /// data.num_rows()), through the representation ActiveScoreMode()
  /// selects. The f64 and binned paths are bit-identical to the
  /// reference PredictProbaPrefix for any thread count and either
  /// descent (SIMD or scalar); the f32 path is AUC-parity only.
  /// Requires k >= 1.
  ///
  /// Row-major views (the serve batch path) feed the descent loops a
  /// direct pointer, exactly as before the columnar refactor; columnar
  /// views are staged block-by-block into a reused per-thread row-major
  /// buffer (L1-resident, counted as scratch traffic) so the four
  /// descent paths stay untouched. Staging copies values verbatim, so
  /// both feeds are bit-identical.
  void PredictPrefixInto(const DatasetView& data, std::size_t k,
                         std::span<double> out) const;

  /// Whether this program has a binned lowering (false when a feature
  /// carries more than kBinnedMaxCuts distinct thresholds). When false,
  /// ScoreMode::kBinned scores through the f64 path instead and
  /// ActiveKernel reports "flat". Builds the mirror on first call.
  bool BinnedAvailable() const;

  std::size_t num_members() const { return program_.members.size(); }
  std::size_t num_trees() const { return program_.trees.size(); }
  std::size_t num_nodes() const { return program_.pool.size(); }

 private:
  FlatForest() = default;

  const F32Program& F32() const;
  const BinnedProgram& Binned() const;
  const CompleteProgram& Complete() const;

  FlatProgram program_;
  // Derived representations, built on first use. Mutable + call_once:
  // a compiled forest is logically immutable and shared by concurrent
  // serve workers, so the lazy build must be thread-safe.
  mutable std::once_flag f32_once_;
  mutable F32Program f32_;
  mutable std::once_flag binned_once_;
  mutable BinnedProgram binned_;
  mutable std::once_flag complete_once_;
  mutable CompleteProgram complete_;
};

/// The batch-scoring path `model` takes right now: "reference" (no
/// compiled program — the capability is missing, a member failed to
/// lower, or the kernel is disabled), or the compiled path for the
/// active scoring mode — "flat" (f64), "flat_f32", or "flat_binned"
/// ("flat" again when the program has no binned lowering). Answers via
/// the FlatScorable capability, compiling lazily if needed. Benches and
/// the serving layer stamp this into their reports so runs are
/// comparable.
const char* ActiveKernel(const Classifier& model);

}  // namespace kernels
}  // namespace spe

#endif  // SPE_KERNELS_FLAT_FOREST_H_
