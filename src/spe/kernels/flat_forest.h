#ifndef SPE_KERNELS_FLAT_FOREST_H_
#define SPE_KERNELS_FLAT_FOREST_H_

#include <cstddef>
#include <memory>
#include <span>

#include "spe/kernels/program.h"

namespace spe {

class Classifier;
class Dataset;
class VotingEnsemble;

namespace kernels {

/// Process-wide kernel switch. Defaults to on; the environment variable
/// SPE_FLAT_KERNEL=0|off|false disables it at startup (same grammar as
/// SPE_OBS), and benches flip it at runtime to measure the reference
/// path and the kernel in one process. When off, VotingEnsemble scores
/// with the reference member loop — results are bit-identical either
/// way, so this knob only changes speed.
bool FlatKernelEnabled();
void SetFlatKernelEnabled(bool enabled);

/// A voting ensemble compiled for batch inference: every member's trees
/// flattened into one structure-of-arrays node pool plus a member
/// program (see spe/kernels/program.h), walked by a blocked row×tree
/// kernel. The kernel reproduces the reference scoring loop
/// (VotingEnsemble::PredictProbaPrefix) bit-for-bit: members accumulate
/// in index order, GBDT members replay base + lr·leaf per tree then the
/// same sigmoid, and NaN feature values take the right edge exactly
/// like the reference `x <= threshold` comparison. What changes is the
/// memory traffic: zero per-member temporaries, contiguous node
/// storage, and ~64-row blocks whose descent steps are independent, so
/// the CPU overlaps the tree-walk loads instead of serializing on one
/// row's pointer chase.
class FlatForest {
 public:
  /// Lowers every member of `ensemble` (discovered via FlatCompilable)
  /// into one program. Returns nullptr when the ensemble is empty or
  /// any member cannot lower — callers fall back to the reference loop.
  static std::unique_ptr<const FlatForest> Compile(
      const VotingEnsemble& ensemble);

  /// Lowers `ensemble` into a kGroup member op of an enclosing program.
  /// This is how nested tree-backed ensembles (a RandomForest member
  /// inside an SPE forest) compile: the wrapper's FlatCompilable
  /// delegates here. Returns false when any member cannot lower; the
  /// program is then abandoned by the caller.
  static bool LowerEnsemble(const VotingEnsemble& ensemble,
                            FlatProgram& program, MemberOp& op);

  /// Mean probability over the first min(k, num_members()) members for
  /// every row of `data`, written to `out` (size must equal
  /// data.num_rows()). Bit-identical to the reference
  /// PredictProbaPrefix for any thread count. Requires k >= 1.
  void PredictPrefixInto(const Dataset& data, std::size_t k,
                         std::span<double> out) const;

  std::size_t num_members() const { return program_.members.size(); }
  std::size_t num_trees() const { return program_.trees.size(); }
  std::size_t num_nodes() const { return program_.pool.size(); }

 private:
  FlatForest() = default;

  FlatProgram program_;
};

/// "flat" or "reference": the batch-scoring path `model` takes right
/// now. Answers via the FlatScorable capability (compiling lazily if
/// needed); models without the capability are by definition on the
/// reference path. Benches and the serving layer stamp this into their
/// reports so runs are comparable.
const char* ActiveKernel(const Classifier& model);

}  // namespace kernels
}  // namespace spe

#endif  // SPE_KERNELS_FLAT_FOREST_H_
