#ifndef SPE_KERNELS_SIMD_H_
#define SPE_KERNELS_SIMD_H_

#include <cstddef>
#include <cstdint>

// Portable intrinsic wrappers for the flat kernel's vectorized descent.
//
// Dispatch is compile-time: whichever ISA the kernel translation unit is
// built for selects one backend, and a build without vector extensions
// (the portable default) selects none — `kHasSimd` is then false and
// flat_forest.cc keeps every walk on its scalar loop, so the default
// build's bit-identity contract is trivially untouched. With
// `-DSPE_SIMD=ON` (adds -mavx2 to this TU only) or `-DSPE_NATIVE=ON`
// (-march=native) the AVX2 backend activates; on aarch64 the NEON
// backend is active in every build because NEON is part of the base ISA.
//
// The wrappers deliberately expose only what a mask-select tree descent
// needs: broadcast/iota index vectors, gathers keyed by an index vector,
// and a fused "descend" step that turns an IEEE `!(v <= t)` comparison
// into a child select. All index math is int32 (node ids and row offsets
// both fit — the pool is bounded far below 2^31 nodes) and every
// floating-point operation is an exact comparison or lane-independent
// move, so a vectorized walk computes bit-for-bit the same leaf indices
// as the scalar walk. That is what lets the SIMD f64 path stay inside
// the default path's byte-identity contract instead of needing its own
// tolerance.
//
// Two lane geometries per backend:
//   F64Lanes — double descent (4 lanes on AVX2, 2 on NEON)
//   F32Lanes — float descent for the opt-in f32 mode (8 / 4 lanes)
// The binned (uint8) descent is not vectorized: byte gathers have no
// hardware support on either ISA, and the scalar byte walk is already
// load-bound on the row-binned block.

#if defined(__AVX2__)
#define SPE_KERNELS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SPE_KERNELS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace spe {
namespace kernels {
namespace simd {

#if defined(SPE_KERNELS_SIMD_AVX2)

inline constexpr bool kHasSimd = true;
inline constexpr const char* kIsa = "avx2";
// x86 gathers issue one load uop per lane plus several cycles of setup
// (a 4-lane vgatherdpd is ~5 uops at ~4-cycle throughput on Skylake-
// through-Zen3 cores), and tree descent is load-bound either way — so
// four lanes of gathers cost MORE than the four scalar iterations the
// out-of-order core already overlaps in the blocked walk. Measured on
// the reference bench: the gather descent is ~2-4x slower than the
// scalar walk. The wrappers stay for conformance (machine-checked
// bit-identity of the mask-select descent) and for cores with
// single-cycle gathers; the runtime default leaves them off
// (SPE_SIMD=1 forces them on — see SimdEnabled in flat_forest.h).
inline constexpr bool kGatherDescentProfitable = false;

/// 4 rows of f64 descent per step; node/row indices ride an __m128i.
struct F64Lanes {
  static constexpr std::size_t kLanes = 4;
  using Value = __m256d;
  using Index = __m128i;

  static Index BroadcastIndex(std::int32_t v) { return _mm_set1_epi32(v); }
  /// {0, step, 2*step, 3*step} — the per-lane row offsets of a block.
  static Index IotaTimes(std::int32_t step) {
    return _mm_setr_epi32(0, step, 2 * step, 3 * step);
  }
  static Index AddIndex(Index a, Index b) { return _mm_add_epi32(a, b); }
  // Masked gathers with an explicit zero source and all-ones mask: the
  // same vgatherd instruction as the plain form, but without the
  // _mm256_undefined_* seed that trips gcc's -Wmaybe-uninitialized.
  static Index GatherIndex(const std::int32_t* base, Index idx) {
    return _mm_mask_i32gather_epi32(_mm_setzero_si128(), base, idx,
                                    _mm_set1_epi32(-1), 4);
  }
  static Value GatherValue(const double* base, Index idx) {
    return _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
  }
  /// One descent step: next = left + ((right - left) & mask(!(v <= t))).
  /// _CMP_NLE_UQ is exactly the scalar `!(v <= t)` — true for v > t and
  /// for unordered (NaN) operands, so NaN takes the right edge here too.
  static Index Descend(Index left, Index right, Value v, Value t) {
    const __m256d go_right = _mm256_cmp_pd(v, t, _CMP_NLE_UQ);
    // The 4x64-bit lane masks carry their value in both 32-bit halves;
    // vpermd the even halves down into one __m128i of 4x32-bit masks.
    const __m256i wide = _mm256_castpd_si256(go_right);
    const __m128i mask = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        wide, _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6)));
    return _mm_add_epi32(left,
                         _mm_and_si128(_mm_sub_epi32(right, left), mask));
  }
  static void StoreIndex(std::int32_t* dst, Index idx) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), idx);
  }
};

/// 8 rows of f32 descent per step; indices ride an __m256i.
struct F32Lanes {
  static constexpr std::size_t kLanes = 8;
  using Value = __m256;
  using Index = __m256i;

  static Index BroadcastIndex(std::int32_t v) { return _mm256_set1_epi32(v); }
  static Index IotaTimes(std::int32_t step) {
    return _mm256_setr_epi32(0, step, 2 * step, 3 * step, 4 * step, 5 * step,
                             6 * step, 7 * step);
  }
  static Index AddIndex(Index a, Index b) { return _mm256_add_epi32(a, b); }
  static Index GatherIndex(const std::int32_t* base, Index idx) {
    return _mm256_mask_i32gather_epi32(_mm256_setzero_si256(), base, idx,
                                       _mm256_set1_epi32(-1), 4);
  }
  static Value GatherValue(const float* base, Index idx) {
    return _mm256_mask_i32gather_ps(
        _mm256_setzero_ps(), base, idx,
        _mm256_castsi256_ps(_mm256_set1_epi32(-1)), 4);
  }
  static Index Descend(Index left, Index right, Value v, Value t) {
    // f32 lane masks are already 32-bit — no repack needed.
    const __m256i mask =
        _mm256_castps_si256(_mm256_cmp_ps(v, t, _CMP_NLE_UQ));
    return _mm256_add_epi32(
        left, _mm256_and_si256(_mm256_sub_epi32(right, left), mask));
  }
  static void StoreIndex(std::int32_t* dst, Index idx) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), idx);
  }
};

#elif defined(SPE_KERNELS_SIMD_NEON)

inline constexpr bool kHasSimd = true;
inline constexpr const char* kIsa = "neon";
// NEON has no gather hardware: GatherIndex/GatherValue are the same
// scalar loads the scalar walk would issue, so the vector descent adds
// nothing to the load bill and halves the compare/select ALU work —
// profitable by construction.
inline constexpr bool kGatherDescentProfitable = true;

/// 2 rows of f64 descent per step. NEON has no gather instruction, so
/// gathers are lane inserts — the win over the scalar walk is the
/// branch-free compare/select and the two descent chains per register.
struct F64Lanes {
  static constexpr std::size_t kLanes = 2;
  using Value = float64x2_t;
  using Index = int32x2_t;

  static Index BroadcastIndex(std::int32_t v) { return vdup_n_s32(v); }
  static Index IotaTimes(std::int32_t step) {
    const std::int32_t lanes[2] = {0, step};
    return vld1_s32(lanes);
  }
  static Index AddIndex(Index a, Index b) { return vadd_s32(a, b); }
  static Index GatherIndex(const std::int32_t* base, Index idx) {
    const std::int32_t lanes[2] = {base[vget_lane_s32(idx, 0)],
                                   base[vget_lane_s32(idx, 1)]};
    return vld1_s32(lanes);
  }
  static Value GatherValue(const double* base, Index idx) {
    const double lanes[2] = {base[vget_lane_s32(idx, 0)],
                             base[vget_lane_s32(idx, 1)]};
    return vld1q_f64(lanes);
  }
  static Index Descend(Index left, Index right, Value v, Value t) {
    // vcleq is the ordered v <= t (false on NaN); its negation is the
    // scalar `!(v <= t)` including the NaN-right routing. vmovn keeps
    // the low 32 bits of each all-ones/all-zeros 64-bit lane mask.
    const uint32x2_t mask = vmvn_u32(vmovn_u64(vcleq_f64(v, t)));
    return vadd_s32(left,
                    vand_s32(vsub_s32(right, left),
                             vreinterpret_s32_u32(mask)));
  }
  static void StoreIndex(std::int32_t* dst, Index idx) { vst1_s32(dst, idx); }
};

/// 4 rows of f32 descent per step.
struct F32Lanes {
  static constexpr std::size_t kLanes = 4;
  using Value = float32x4_t;
  using Index = int32x4_t;

  static Index BroadcastIndex(std::int32_t v) { return vdupq_n_s32(v); }
  static Index IotaTimes(std::int32_t step) {
    const std::int32_t lanes[4] = {0, step, 2 * step, 3 * step};
    return vld1q_s32(lanes);
  }
  static Index AddIndex(Index a, Index b) { return vaddq_s32(a, b); }
  static Index GatherIndex(const std::int32_t* base, Index idx) {
    const std::int32_t lanes[4] = {
        base[vgetq_lane_s32(idx, 0)], base[vgetq_lane_s32(idx, 1)],
        base[vgetq_lane_s32(idx, 2)], base[vgetq_lane_s32(idx, 3)]};
    return vld1q_s32(lanes);
  }
  static Value GatherValue(const float* base, Index idx) {
    const float lanes[4] = {
        base[vgetq_lane_s32(idx, 0)], base[vgetq_lane_s32(idx, 1)],
        base[vgetq_lane_s32(idx, 2)], base[vgetq_lane_s32(idx, 3)]};
    return vld1q_f32(lanes);
  }
  static Index Descend(Index left, Index right, Value v, Value t) {
    const uint32x4_t mask = vmvnq_u32(vcleq_f32(v, t));
    return vaddq_s32(left,
                     vandq_s32(vsubq_s32(right, left),
                               vreinterpretq_s32_u32(mask)));
  }
  static void StoreIndex(std::int32_t* dst, Index idx) {
    vst1q_s32(dst, idx);
  }
};

#else

inline constexpr bool kHasSimd = false;
inline constexpr const char* kIsa = "scalar";
inline constexpr bool kGatherDescentProfitable = false;

#endif

}  // namespace simd
}  // namespace kernels
}  // namespace spe

#endif  // SPE_KERNELS_SIMD_H_
