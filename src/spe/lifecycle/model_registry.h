#ifndef SPE_LIFECYCLE_MODEL_REGISTRY_H_
#define SPE_LIFECYCLE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/retry.h"
#include "spe/core/hardness.h"
#include "spe/lifecycle/drift.h"
#include "spe/obs/metrics.h"

namespace spe {
namespace lifecycle {

/// What the registry records about one loaded artifact — the fields an
/// operator needs to answer "what exactly is this process serving?".
struct VersionManifest {
  std::uint64_t version = 0;   ///< registry-assigned, monotonic from 1
  std::string source_path;     ///< artifact file; "" for in-memory installs
  int format_version = 0;      ///< bundle header version (0 = in-memory)
  std::size_t num_features = 0;
  std::size_t payload_bytes = 0;  ///< 0 when the artifact carried none
  std::string crc32_hex;          ///< "" when the artifact carried none
  std::string kernel;  ///< "flat" / "flat_f32" / "flat_binned" / "reference"
  bool has_hardness_histogram = false;
  std::string model_name;  ///< Classifier::Name() of the loaded model
};

/// One immutable loaded model: the classifier, its resolved inference
/// kernel, its manifest, and — when the artifact carried a v3 hardness
/// histogram — a drift detector seeded with that baseline. The model and
/// manifest never change after construction; the drift detector's live
/// counters are the only mutable state, which is what lets scoring
/// threads use a version with no lock at all.
class ModelVersion {
 public:
  /// `model` must be fitted. The flat kernel is compiled here (not on
  /// the first scored batch), so hot reload pays the compile on the
  /// lifecycle thread, never inside a request's latency budget.
  ModelVersion(std::unique_ptr<Classifier> model, VersionManifest manifest,
               const DriftConfig& drift_config);

  ModelVersion(const ModelVersion&) = delete;
  ModelVersion& operator=(const ModelVersion&) = delete;

  const Classifier& model() const { return *model_; }
  /// Non-null iff the model supports ensemble-prefix scoring.
  const PrefixVoter* prefix_voter() const { return prefix_voter_; }
  const VersionManifest& manifest() const { return manifest_; }
  std::uint64_t version() const { return manifest_.version; }
  std::size_t num_features() const { return manifest_.num_features; }
  /// "flat" / "flat_f32" / "flat_binned" / "reference" — resolved once
  /// at construction, under the scoring mode active at load time (serve
  /// sets --kernel-mode before the registry loads).
  const char* kernel() const { return kernel_; }
  /// Non-null iff the artifact carried a training hardness histogram.
  HardnessDriftDetector* drift() const { return drift_.get(); }

 private:
  std::unique_ptr<Classifier> model_;
  const PrefixVoter* prefix_voter_ = nullptr;
  const char* kernel_ = "reference";
  VersionManifest manifest_;
  std::unique_ptr<HardnessDriftDetector> drift_;
};

/// Versioned model registry — the heart of the lifecycle layer
/// (docs/lifecycle.md).
///
/// Owns every model version loaded into the process and designates one
/// as *active* (scores live traffic) and at most one as *shadow*
/// (scores a sample of live batches for comparison; see
/// BatchScorerConfig::shadow_every). Versions are immutable and held by
/// shared_ptr, and the active/shadow designations are
/// std::atomic<std::shared_ptr>: readers snapshot a version with one
/// lock-free atomic load, and a concurrent Activate simply swaps the
/// pointer — batches already holding the old snapshot finish on the old
/// model, new batches pick up the new one, and nothing blocks or drops.
/// Retired versions stay alive as long as any in-flight batch (or the
/// registry's version list) references them.
///
/// Mutations (loading, activating) take a mutex — they are rare,
/// operator-driven events; only the read path is contended.
class ModelRegistry {
 public:
  explicit ModelRegistry(DriftConfig drift_config = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  struct LoadResult {
    std::shared_ptr<const ModelVersion> version;  ///< null on failure
    std::string error;                            ///< reason when null
    bool ok() const { return version != nullptr; }
  };

  /// Loads a model artifact into a new (inactive) version. The file is
  /// probed first (ProbeModelBundleFile) so a truncated, corrupt or
  /// unsupported artifact is reported as a LoadResult error instead of
  /// aborting the process — the difference between a refused reload and
  /// a serving outage. Legacy artifacts without a schema header need
  /// `fallback_num_features`.
  LoadResult LoadFromFile(const std::string& path,
                          std::size_t fallback_num_features = 0);

  /// Backoff for transient load failures ("cannot open" probes,
  /// injected read faults). Defaults suit serving; tests shrink the
  /// backoff to keep flaky-artifact scenarios fast.
  void set_load_retry(const RetryPolicy& policy) { load_retry_ = policy; }
  const RetryPolicy& load_retry() const { return load_retry_; }

  /// Registers an already-constructed model (tests, embedded use) as a
  /// new inactive version.
  std::shared_ptr<const ModelVersion> Install(
      std::unique_ptr<Classifier> model, std::size_t num_features,
      std::string source_path = "");

  /// Makes `version` the active version. Fails (returning a non-empty
  /// error, with the previous active untouched) when the version's
  /// feature width differs from the current active's — a server cannot
  /// change its input schema mid-stream.
  std::string Activate(std::shared_ptr<const ModelVersion> version);

  /// Designates `version` as the shadow scorer; null clears it.
  void SetShadow(std::shared_ptr<const ModelVersion> version);

  /// Lock-free snapshots. active() is non-null once Activate has
  /// succeeded; shadow() may be null.
  std::shared_ptr<const ModelVersion> active() const {
    return active_.load(std::memory_order_acquire);
  }
  std::shared_ptr<const ModelVersion> shadow() const {
    return shadow_.load(std::memory_order_acquire);
  }

  /// Manifest of every version ever loaded, in version order, with the
  /// current role ("active", "shadow", "loaded") resolved per entry.
  struct ManifestEntry {
    VersionManifest manifest;
    std::string role;
  };
  std::vector<ManifestEntry> Manifests() const;

  const DriftConfig& drift_config() const { return drift_config_; }

 private:
  /// Assigns the next version number and records the new version.
  std::shared_ptr<const ModelVersion> Register(
      std::unique_ptr<Classifier> model, VersionManifest manifest);

  const DriftConfig drift_config_;
  RetryPolicy load_retry_;
  std::atomic<std::shared_ptr<const ModelVersion>> active_{nullptr};
  std::atomic<std::shared_ptr<const ModelVersion>> shadow_{nullptr};

  mutable std::mutex mu_;  // guards versions_ and next_version_
  std::vector<std::shared_ptr<const ModelVersion>> versions_;
  std::uint64_t next_version_ = 1;

  obs::Gauge& active_version_gauge_;
  obs::Gauge& shadow_version_gauge_;
  obs::Gauge& versions_loaded_gauge_;
  obs::Counter& loads_total_;
  obs::Counter& load_failures_total_;
  obs::Counter& activations_total_;
};

}  // namespace lifecycle
}  // namespace spe

#endif  // SPE_LIFECYCLE_MODEL_REGISTRY_H_
