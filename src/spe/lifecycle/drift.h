#ifndef SPE_LIFECYCLE_DRIFT_H_
#define SPE_LIFECYCLE_DRIFT_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "spe/core/hardness.h"
#include "spe/obs/metrics.h"

namespace spe {
namespace lifecycle {

struct DriftConfig {
  /// PSI above which the live hardness distribution is declared to have
  /// drifted from the training baseline. 0.25 is the conventional
  /// "significant shift" threshold from the credit-scoring literature
  /// where PSI originates; 0.1–0.25 is "monitor".
  double psi_threshold = 0.25;
  /// Minimum live observations before the detector renders a verdict —
  /// PSI over a handful of rows is noise, not evidence.
  std::uint64_t min_samples = 512;
};

/// Hardness-distribution drift detector (docs/lifecycle.md).
///
/// The §V-A insight that powers self-paced under-sampling — the
/// hardness distribution of the majority class summarizes how the data
/// looks to the model — also yields a natural drift statistic for
/// serving: freeze the training-time hardness-bin histogram in the
/// model artifact (v3 bundles), bin live-traffic hardness with the same
/// geometry, and compare the two distributions. A served score has no
/// label, so live hardness is evaluated against the majority label
/// (y = 0), exactly how Fit evaluates the majority set it bins.
///
/// The divergence is the Population Stability Index
///   PSI = sum_b (l_b - g_b) * ln(l_b / g_b)
/// over bin fractions l (live) and g (training baseline), with additive
/// smoothing so empty bins on either side stay finite. PSI is a
/// symmetrized KL divergence; unlike a chi-square statistic it does not
/// scale with sample count, so one threshold works at any traffic rate.
///
/// Thread-safe: Observe is one relaxed atomic add per row; Publish
/// snapshots the counts and refreshes the spe_lifecycle_drift_* gauges.
/// One instance belongs to one model version (lifecycle::ModelVersion),
/// so the live window resets naturally on hot reload.
class HardnessDriftDetector {
 public:
  /// `baseline` must be non-empty and carry a recognized hardness kind
  /// (checked). Construct via ModelVersion, which skips construction
  /// entirely for artifacts without a histogram.
  explicit HardnessDriftDetector(HardnessHistogram baseline,
                                 DriftConfig config = {});

  HardnessDriftDetector(const HardnessDriftDetector&) = delete;
  HardnessDriftDetector& operator=(const HardnessDriftDetector&) = delete;

  /// Records one served probability into the live histogram.
  void Observe(double proba);
  void ObserveBatch(std::span<const double> probs);

  /// PSI of the current live histogram against the baseline. 0 before
  /// any observation.
  double Psi() const;

  /// True when the verdict stands: enough samples and PSI over the
  /// threshold.
  bool Alerting() const;

  std::uint64_t live_total() const {
    return live_total_.load(std::memory_order_relaxed);
  }
  const HardnessHistogram& baseline() const { return baseline_; }
  const DriftConfig& config() const { return config_; }

  /// Refreshes the exposition: spe_lifecycle_drift_psi,
  /// spe_lifecycle_drift_observed, spe_lifecycle_drift_alert (0/1) and
  /// — on a 0 -> 1 alert transition only — increments
  /// spe_lifecycle_drift_alerts_total.
  void Publish();

 private:
  const HardnessHistogram baseline_;
  const DriftConfig config_;
  HardnessFn hardness_;
  std::vector<std::atomic<std::uint64_t>> live_;
  std::atomic<std::uint64_t> live_total_{0};
  std::atomic<bool> alerted_{false};

  // Resolved once; Publish touches no registry locks after construction.
  obs::Gauge& psi_gauge_;
  obs::Gauge& observed_gauge_;
  obs::Gauge& alert_gauge_;
  obs::Counter& alerts_total_;
};

}  // namespace lifecycle
}  // namespace spe

#endif  // SPE_LIFECYCLE_DRIFT_H_
