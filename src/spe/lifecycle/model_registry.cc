#include "spe/lifecycle/model_registry.h"

#include <utility>

#include "spe/common/check.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/trace.h"

namespace spe {
namespace lifecycle {

ModelVersion::ModelVersion(std::unique_ptr<Classifier> model,
                           VersionManifest manifest,
                           const DriftConfig& drift_config)
    : model_(std::move(model)), manifest_(std::move(manifest)) {
  SPE_CHECK(model_ != nullptr);
  SPE_CHECK_GT(manifest_.num_features, 0u);
  prefix_voter_ = dynamic_cast<const PrefixVoter*>(model_.get());
  // Resolving the kernel compiles the flat program if the model can
  // lower — deliberately on the loading thread (see class comment).
  kernel_ = kernels::ActiveKernel(*model_);
  manifest_.kernel = kernel_;
  manifest_.model_name = model_->Name();
  if (const auto* profiled = dynamic_cast<const HardnessProfiled*>(
          model_.get())) {
    if (const HardnessHistogram* histogram = profiled->training_hardness()) {
      manifest_.has_hardness_histogram = true;
      drift_ = std::make_unique<HardnessDriftDetector>(*histogram,
                                                       drift_config);
    }
  }
}

ModelRegistry::ModelRegistry(DriftConfig drift_config)
    : drift_config_(drift_config),
      active_version_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_active_version")),
      shadow_version_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_shadow_version")),
      versions_loaded_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_versions_loaded")),
      loads_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_loads_total")),
      load_failures_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_load_failures_total")),
      activations_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_activations_total")) {}

ModelRegistry::LoadResult ModelRegistry::LoadFromFile(
    const std::string& path, std::size_t fallback_num_features) {
  const obs::TraceSpan span("lifecycle.load");
  LoadResult result;
  // Probe before the real loader: LoadModelBundle enforces integrity
  // with aborting checks (correct for startup — a server must not come
  // up on a bad artifact), but a *reload* candidate failing must refuse
  // the candidate, not take down the serving process.
  //
  // Transient failures — "cannot open" from the probe (a mount blip; the
  // artifact is rename(2)-published, so a file that exists is never
  // torn) and TransientIoError from the loader (injected read faults) —
  // retry under load_retry_ before the candidate is refused. Integrity
  // failures never retry: bits do not heal.
  ModelBundle bundle;
  try {
    const BundleProbe probe =
        RetryWithBackoff(load_retry_, "artifact probe " + path, [&] {
          BundleProbe p = ProbeModelBundleFile(path);
          if (!p.ok &&
              p.error.find("cannot open") != std::string::npos) {
            throw TransientIoError(p.error);
          }
          return p;
        });
    if (!probe.ok) {
      load_failures_total_.Add();
      result.error = probe.error;
      return result;
    }
    bundle = RetryWithBackoff(load_retry_, "artifact load " + path,
                              [&] { return LoadModelBundleFromFile(path); });
  } catch (const TransientIoError& error) {
    load_failures_total_.Add();
    result.error = error.what();
    return result;
  }
  std::size_t num_features = bundle.num_features;
  if (num_features == 0) num_features = fallback_num_features;
  if (num_features == 0) {
    load_failures_total_.Add();
    result.error =
        "artifact has no schema header and no fallback width was given";
    return result;
  }
  VersionManifest manifest;
  manifest.source_path = path;
  manifest.format_version = bundle.format_version;
  manifest.num_features = num_features;
  manifest.payload_bytes = bundle.payload_bytes;
  manifest.crc32_hex = bundle.crc32_hex;
  result.version = Register(std::move(bundle.model), std::move(manifest));
  return result;
}

std::shared_ptr<const ModelVersion> ModelRegistry::Register(
    std::unique_ptr<Classifier> model, VersionManifest manifest) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest.version = next_version_++;
  // Construction under the mutex keeps version numbers dense and in
  // load order; the expensive part (kernel compile) is rare and only
  // ever contends with another load, never with scoring.
  auto version = std::make_shared<const ModelVersion>(
      std::move(model), std::move(manifest), drift_config_);
  versions_.push_back(version);
  versions_loaded_gauge_.Set(static_cast<double>(versions_.size()));
  loads_total_.Add();
  return version;
}

std::shared_ptr<const ModelVersion> ModelRegistry::Install(
    std::unique_ptr<Classifier> model, std::size_t num_features,
    std::string source_path) {
  VersionManifest manifest;
  manifest.source_path = std::move(source_path);
  manifest.num_features = num_features;
  return Register(std::move(model), std::move(manifest));
}

std::string ModelRegistry::Activate(
    std::shared_ptr<const ModelVersion> version) {
  SPE_CHECK(version != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const ModelVersion> current =
      active_.load(std::memory_order_acquire);
  if (current != nullptr &&
      current->num_features() != version->num_features()) {
    return "cannot activate version " + std::to_string(version->version()) +
           ": feature width " + std::to_string(version->num_features()) +
           " does not match the serving schema width " +
           std::to_string(current->num_features());
  }
  // The swap itself: one atomic store. Scoring threads that already
  // snapshotted `current` finish their batch on it; the next snapshot
  // sees `version`. Nothing waits, nothing drops.
  active_.store(std::move(version), std::memory_order_release);
  const auto now_active = active_.load(std::memory_order_acquire);
  active_version_gauge_.Set(static_cast<double>(now_active->version()));
  activations_total_.Add();
  return "";
}

void ModelRegistry::SetShadow(std::shared_ptr<const ModelVersion> version) {
  std::lock_guard<std::mutex> lock(mu_);
  shadow_version_gauge_.Set(
      version == nullptr ? 0.0 : static_cast<double>(version->version()));
  shadow_.store(std::move(version), std::memory_order_release);
}

std::vector<ModelRegistry::ManifestEntry> ModelRegistry::Manifests() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto active = active_.load(std::memory_order_acquire);
  const auto shadow = shadow_.load(std::memory_order_acquire);
  std::vector<ManifestEntry> entries;
  entries.reserve(versions_.size());
  for (const auto& v : versions_) {
    ManifestEntry entry;
    entry.manifest = v->manifest();
    entry.role = v == active ? "active" : v == shadow ? "shadow" : "loaded";
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace lifecycle
}  // namespace spe
