#include "spe/lifecycle/drift.h"

#include <cmath>
#include <utility>

#include "spe/common/check.h"

namespace spe {
namespace lifecycle {

HardnessDriftDetector::HardnessDriftDetector(HardnessHistogram baseline,
                                             DriftConfig config)
    : baseline_(std::move(baseline)),
      config_(config),
      live_(baseline_.counts.size()),
      psi_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_drift_psi")),
      observed_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_drift_observed")),
      alert_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "spe_lifecycle_drift_alert")),
      alerts_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_drift_alerts_total")) {
  SPE_CHECK(!baseline_.empty()) << "drift baseline histogram is empty";
  SPE_CHECK_GT(baseline_.total(), 0u) << "drift baseline has no samples";
  HardnessKind kind{};
  SPE_CHECK(HardnessKindFromName(baseline_.kind, &kind))
      << "unknown hardness kind in drift baseline: " << baseline_.kind;
  hardness_ = MakeHardness(kind);
  SPE_CHECK_GT(config_.psi_threshold, 0.0);
}

void HardnessDriftDetector::Observe(double proba) {
  // A served row has no label; like Fit's majority-set binning, live
  // hardness is the model's error against the majority label y = 0.
  const double h = hardness_(proba, /*label=*/0);
  const std::size_t bin =
      HardnessBinIndex(h, baseline_.min, baseline_.max, live_.size());
  live_[bin].fetch_add(1, std::memory_order_relaxed);
  live_total_.fetch_add(1, std::memory_order_relaxed);
}

void HardnessDriftDetector::ObserveBatch(std::span<const double> probs) {
  for (const double p : probs) Observe(p);
}

double HardnessDriftDetector::Psi() const {
  const std::uint64_t live_total = live_total_.load(std::memory_order_relaxed);
  if (live_total == 0) return 0.0;
  // Additive smoothing: half a pseudo-count per bin keeps a bin that is
  // empty on one side from driving the sum to infinity while barely
  // perturbing well-populated bins.
  constexpr double kEps = 0.5;
  const std::size_t k = live_.size();
  const double base_total = static_cast<double>(baseline_.total()) +
                            kEps * static_cast<double>(k);
  const double live_denom = static_cast<double>(live_total) +
                            kEps * static_cast<double>(k);
  double psi = 0.0;
  for (std::size_t b = 0; b < k; ++b) {
    const double g =
        (static_cast<double>(baseline_.counts[b]) + kEps) / base_total;
    const double l =
        (static_cast<double>(live_[b].load(std::memory_order_relaxed)) +
         kEps) /
        live_denom;
    psi += (l - g) * std::log(l / g);
  }
  return psi;
}

bool HardnessDriftDetector::Alerting() const {
  return live_total() >= config_.min_samples && Psi() > config_.psi_threshold;
}

void HardnessDriftDetector::Publish() {
  const double psi = Psi();
  psi_gauge_.Set(psi);
  observed_gauge_.Set(static_cast<double>(live_total()));
  const bool alert =
      live_total() >= config_.min_samples && psi > config_.psi_threshold;
  alert_gauge_.Set(alert ? 1.0 : 0.0);
  if (alert) {
    // Rising-edge counter: pages fire per episode, not per batch.
    if (!alerted_.exchange(true, std::memory_order_relaxed)) {
      alerts_total_.Add();
    }
  } else {
    alerted_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace lifecycle
}  // namespace spe
