#include "spe/core/self_paced_sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "spe/common/check.h"
#include "spe/obs/trace.h"

namespace spe {

std::vector<std::size_t> SelfPacedUnderSample(
    std::span<const double> majority_hardness, double alpha,
    std::size_t num_bins, std::size_t target_count, Rng& rng,
    std::vector<std::size_t>* bin_population_out) {
  SPE_CHECK_GE(alpha, 0.0);
  if (bin_population_out != nullptr) bin_population_out->clear();
  const std::size_t n = majority_hardness.size();
  SPE_CHECK_GT(n, 0u);
  if (target_count >= n) {
    // Fewer majority samples than requested: take everything.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }

  const HardnessBins bins = [&] {
    const obs::TraceSpan span("spe.fit.bin_harmonize");
    return ComputeHardnessBins(majority_hardness, num_bins);
  }();

  // Membership lists per bin.
  std::vector<std::vector<std::size_t>> members(num_bins);
  for (std::size_t b = 0; b < num_bins; ++b) {
    members[b].reserve(bins.population[b]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    members[bins.bin_of_sample[i]].push_back(i);
  }

  // Unnormalized bin weights p_l = 1 / (h_l + alpha); empty bins get 0.
  // alpha = inf (allowed by the tan schedule's final iteration) makes all
  // non-empty bins equally weighted.
  std::vector<double> weight(num_bins, 0.0);
  double weight_sum = 0.0;
  for (std::size_t b = 0; b < num_bins; ++b) {
    if (bins.population[b] == 0) continue;
    if (std::isinf(alpha)) {
      weight[b] = 1.0;
    } else if (bins.mean_hardness[b] + alpha > 0.0) {
      weight[b] = 1.0 / (bins.mean_hardness[b] + alpha);
    }
    // else: an all-trivial bin at alpha = 0 would get infinite weight;
    // following the authors' released implementation such bins get
    // weight 0 — harmonizing a zero contribution needs zero samples.
    // (Tree bases routinely emit hardness exactly 0.)
    weight_sum += weight[b];
  }
  if (weight_sum <= 0.0) {
    // Every non-empty bin is perfectly classified: plain random
    // under-sampling is the only sensible degenerate behaviour.
    return rng.SampleWithoutReplacement(n, target_count);
  }

  // Apportion the target across bins by largest remainder so that the
  // realized quotas stay proportional to p_l even when the per-bin
  // shares are fractional (small |P|, many bins). Flooring instead would
  // leave most of the subset to an unweighted top-up, silently turning
  // SPE into random under-sampling on small-minority data.
  std::vector<std::size_t> quota(num_bins, 0);
  std::vector<std::pair<double, std::size_t>> remainder;  // (frac, bin)
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < num_bins; ++b) {
    if (bins.population[b] == 0) continue;
    const double share =
        weight[b] / weight_sum * static_cast<double>(target_count);
    quota[b] = std::min(static_cast<std::size_t>(share), members[b].size());
    assigned += quota[b];
    if (quota[b] < members[b].size()) {
      remainder.emplace_back(share - std::floor(share), b);
    }
  }
  // Hand out the remaining slots by descending fractional share, looping
  // (with whole extra units) while saturated bins drop out.
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  while (assigned < target_count) {
    bool progressed = false;
    for (auto& [frac, b] : remainder) {
      if (assigned >= target_count) break;
      if (quota[b] >= members[b].size()) continue;
      ++quota[b];
      ++assigned;
      progressed = true;
    }
    SPE_CHECK(progressed) << "apportionment stuck";  // implies target > n
  }

  if (bin_population_out != nullptr) {
    bin_population_out->assign(quota.begin(), quota.end());
  }
  std::vector<std::size_t> selected;
  selected.reserve(target_count);
  for (std::size_t b = 0; b < num_bins; ++b) {
    for (std::size_t pick :
         rng.SampleWithoutReplacement(members[b].size(), quota[b])) {
      selected.push_back(members[b][pick]);
    }
  }
  return selected;
}

}  // namespace spe
