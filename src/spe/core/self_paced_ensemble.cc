#include "spe/core/self_paced_ensemble.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>
#include <utility>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/common/rng.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/kernels/flat_forest.h"
#include "spe/metrics/metrics.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

namespace spe {
namespace {

// Rows per worker for the element-wise hardness / probability-sum
// updates: memory-bound loops only pay for fan-out on large majorities.
constexpr std::size_t kUpdateGrain = 4096;

// A NaN probability would silently poison every later hardness update
// (prob_sum is cumulative), and the eventual "hardness must be
// non-negative" abort points nowhere near the culprit. Fail here, naming
// the member that produced it.
void CheckProbsAreNotNan(const std::vector<double>& probs,
                         std::size_t member_index) {
  for (std::size_t m = 0; m < probs.size(); ++m) {
    SPE_CHECK(!std::isnan(probs[m]))
        << "base learner member " << member_index
        << " produced NaN probability for majority row " << m;
  }
}

}  // namespace

SelfPacedEnsemble::SelfPacedEnsemble(const SelfPacedEnsembleConfig& config)
    : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK_GT(config.num_bins, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

SelfPacedEnsemble::SelfPacedEnsemble(const SelfPacedEnsembleConfig& config,
                                     std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK_GT(config.num_bins, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
}

double SelfPacedEnsemble::AlphaAt(AlphaSchedule schedule, std::size_t i,
                                  std::size_t n) {
  SPE_CHECK_GE(i, 1u);
  SPE_CHECK_LE(i, n);
  // Progress in [0, 1] across the self-paced iterations. Algorithm 1
  // writes alpha = tan(i*pi/2n), but the surrounding text (and the
  // authors' released implementation) require alpha = 0 at the first
  // iteration and alpha -> inf at the last, so the schedule is evaluated
  // on (i-1)/(n-1).
  const double progress =
      n <= 1 ? 1.0
             : static_cast<double>(i - 1) / static_cast<double>(n - 1);
  switch (schedule) {
    case AlphaSchedule::kTan:
      if (progress >= 1.0) return std::numeric_limits<double>::infinity();
      return std::tan(progress * std::numbers::pi / 2.0);
    case AlphaSchedule::kZero:
      return 0.0;
    case AlphaSchedule::kInfinity:
      return std::numeric_limits<double>::infinity();
    case AlphaSchedule::kLinear:
      return 10.0 * progress;
  }
  SPE_CHECK(false) << "unhandled schedule";
  return 0.0;
}

void SelfPacedEnsemble::Fit(const Dataset& train) {
  // Spans read the steady clock only — never the Rng — and gauges are
  // pure reporting, so instrumentation cannot perturb the bit-identical
  // determinism contract (docs/performance.md).
  const obs::TraceSpan fit_span("spe.fit");
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty()) << "SPE needs at least one minority sample";
  SPE_CHECK(!neg.empty()) << "SPE needs at least one majority sample";

  ensemble_ = VotingEnsemble();
  training_hardness_ = HardnessHistogram();
  Rng rng(config_.seed);
  const Dataset minority = train.Subset(pos);
  const Dataset majority = train.Subset(neg);
  const HardnessFn hardness_fn = config_.custom_hardness
                                     ? config_.custom_hardness
                                     : MakeHardness(config_.hardness);

  auto make_member = [&](std::size_t index) {
    std::unique_ptr<Classifier> member = base_prototype_->Clone();
    member->Reseed(config_.seed + 7919 * (index + 1));
    return member;
  };
  // Reusable balanced-subset buffer: the minority block is copied once
  // and survives as a fixed prefix; every iteration truncates back to it
  // and appends the fresh majority pick. The old per-iteration deep copy
  // of the minority set was the dominant allocation in this loop.
  Dataset subset = minority;
  subset.Reserve(2 * minority.num_rows());  // picks never exceed |P|
  auto rebuild_subset = [&](const std::vector<std::size_t>& majority_pick) {
    subset.TruncateRows(minority.num_rows());
    for (std::size_t i : majority_pick) subset.AddRow(majority.Row(i), 0);
  };

  // Line 2: bootstrap model f0 on a random balanced subset. It seeds the
  // hardness estimates; whether it votes in the final ensemble is the
  // include_bootstrap_model ablation.
  std::vector<std::size_t> initial_pick(neg.size());
  if (neg.size() > pos.size()) {
    initial_pick = rng.SampleWithoutReplacement(neg.size(), pos.size());
  } else {
    for (std::size_t i = 0; i < neg.size(); ++i) initial_pick[i] = i;
  }
  std::unique_ptr<Classifier> bootstrap = make_member(0);
  rebuild_subset(initial_pick);
  {
    const obs::TraceSpan span("spe.fit.member_fit");
    bootstrap->Fit(subset);
  }

  // Running sum of member probabilities over the majority set: F_i is the
  // average of f_0 .. f_{i-1} (Algorithm 1 line 4). PredictProba chunks
  // the majority rows across threads; the element-wise loops below do the
  // same, and both are bit-identical for any thread count because each
  // element is touched by exactly one fixed computation.
  std::vector<double> prob_sum;
  {
    const obs::TraceSpan span("spe.fit.member_predict");
    prob_sum = bootstrap->PredictProba(majority);
  }
  CheckProbsAreNotNan(prob_sum, 0);
  std::size_t prob_count = 1;
  std::vector<double> hardness(majority.num_rows());

  if (config_.include_bootstrap_model) ensemble_.Add(std::move(bootstrap));

  const std::size_t n = config_.n_estimators;
  const bool instrumented = obs::Enabled();
  std::vector<std::size_t> bin_population;
  for (std::size_t i = 1; i <= n; ++i) {
    // Lines 4-6: hardness of each majority sample w.r.t. the ensemble.
    {
      const obs::TraceSpan span("spe.fit.hardness");
      ParallelForGrain(0, majority.num_rows(), kUpdateGrain,
                       [&](std::size_t m) {
                         hardness[m] = hardness_fn(
                             prob_sum[m] / static_cast<double>(prob_count), 0);
                       });
    }
    // Lines 7-9: self-paced under-sampling with alpha_i.
    const double alpha = AlphaAt(config_.schedule, i, n);
    std::vector<std::size_t> pick;
    {
      const obs::TraceSpan span("spe.fit.under_sample");
      pick = SelfPacedUnderSample(hardness, alpha, config_.num_bins,
                                  minority.num_rows(), rng,
                                  instrumented ? &bin_population : nullptr);
    }
    if (instrumented) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("spe_fit_iterations_total").Add(1);
      registry.GetGauge("spe_fit_alpha").Set(alpha);
      for (std::size_t b = 0; b < bin_population.size(); ++b) {
        registry
            .GetGauge("spe_fit_bin_population{bin=\"" + std::to_string(b) +
                      "\"}")
            .Set(static_cast<double>(bin_population[b]));
      }
    }

    // Line 10: train f_i on the balanced subset.
    std::unique_ptr<Classifier> member = make_member(i);
    rebuild_subset(pick);
    {
      const obs::TraceSpan span("spe.fit.member_fit");
      member->Fit(subset);
    }

    std::vector<double> member_probs;
    {
      const obs::TraceSpan span("spe.fit.member_predict");
      member_probs = member->PredictProba(majority);
    }
    CheckProbsAreNotNan(member_probs, i);
    ParallelForGrain(0, prob_sum.size(), kUpdateGrain, [&](std::size_t m) {
      prob_sum[m] += member_probs[m];
    });
    ++prob_count;

    ensemble_.Add(std::move(member));
    if (callback_) {
      callback_(IterationInfo{i, ensemble_, subset});
    }
  }

  RecordHardnessBaseline(majority);
}

void SelfPacedEnsemble::RecordHardnessBaseline(const Dataset& majority) {
  // Freeze the drift baseline: hardness of the majority set under the
  // ensemble exactly as it will serve (PredictProba — not the self-paced
  // loop's prob_sum, which always includes the bootstrap model f0 even
  // when include_bootstrap_model leaves f0 out of the final vote; a
  // baseline binned over a different member set than the serving vote
  // alerts on in-distribution traffic). Pure reporting — no Rng draw, so
  // the determinism contract is untouched. Skipped for custom hardness
  // closures: the artifact could not name them for the live side to
  // rebuild (training_hardness() docs).
  training_hardness_ = HardnessHistogram();
  if (config_.custom_hardness || ensemble_.size() == 0) return;
  const obs::TraceSpan span("spe.fit.hardness_baseline");
  const std::vector<double> probs = PredictProba(majority);
  const HardnessFn hardness_fn = MakeHardness(config_.hardness);
  std::vector<double> hardness(probs.size());
  ParallelForGrain(0, probs.size(), kUpdateGrain, [&](std::size_t m) {
    hardness[m] = hardness_fn(probs[m], 0);
  });
  const HardnessBins bins = ComputeHardnessBins(hardness, config_.num_bins);
  training_hardness_.kind = HardnessName(config_.hardness);
  double min_h = hardness[0];
  double max_h = hardness[0];
  for (const double h : hardness) {
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);
  }
  training_hardness_.min = min_h;
  training_hardness_.max = max_h;
  training_hardness_.counts.assign(bins.population.begin(),
                                   bins.population.end());
}

std::size_t SelfPacedEnsemble::FitWithValidation(const Dataset& train,
                                                 const Dataset& validation) {
  SPE_CHECK_GT(validation.CountPositives(), 0u)
      << "validation set needs positives to score AUCPRC";

  // Track the running validation score incrementally: each new member
  // contributes its probabilities once.
  std::vector<double> prob_sum(validation.num_rows(), 0.0);
  double best_auc = -1.0;
  std::size_t best_size = 0;
  std::size_t scored_members = 0;  // ensemble prefix already in prob_sum
  const IterationCallback user_callback = callback_;

  // If a base learner throws out of Fit, callback_ must not keep the
  // wrapper below — its captured locals die with this frame and the next
  // Fit would invoke a dangling closure. Scope guard restores the user
  // callback on every exit path.
  struct CallbackGuard {
    SelfPacedEnsemble* self;
    const IterationCallback* user;
    ~CallbackGuard() { self->callback_ = *user; }
  } guard{this, &user_callback};

  callback_ = [&](const IterationInfo& info) {
    // Fold in every member not yet scored, in ensemble order. With
    // include_bootstrap_model the first callback sees two new members
    // (f0 joined before f1's callback fired); walking the gap is what
    // keeps the bootstrap's probabilities from being skipped — the old
    // newest-member-only update silently disabled truncation for that
    // ablation.
    for (; scored_members < info.ensemble.size(); ++scored_members) {
      const std::vector<double> p =
          info.ensemble.member(scored_members).PredictProba(validation);
      for (std::size_t i = 0; i < prob_sum.size(); ++i) prob_sum[i] += p[i];
    }
    std::vector<double> average(prob_sum);
    const double inv = 1.0 / static_cast<double>(info.ensemble.size());
    for (double& v : average) v *= inv;
    const double auc = AucPrc(validation.labels(), average);
    if (auc > best_auc) {
      best_auc = auc;
      best_size = info.ensemble.size();
    }
    if (user_callback) user_callback(info);
  };
  Fit(train);

  SPE_CHECK_GT(best_size, 0u);
  ensemble_.Truncate(best_size);
  // The baseline Fit recorded covered the full ensemble; the truncated
  // prefix is what serves, so re-freeze it against that.
  RecordHardnessBaseline(train.Subset(train.NegativeIndices()));
  return best_size;
}

double SelfPacedEnsemble::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> SelfPacedEnsemble::PredictProba(const Dataset& data) const {
  return ensemble_.PredictProba(data);
}

std::vector<double> SelfPacedEnsemble::PredictProbaPrefix(const Dataset& data,
                                                          std::size_t k) const {
  return ensemble_.PredictProbaPrefix(data, k);
}

void SelfPacedEnsemble::AccumulateProbaInto(const Dataset& data,
                                            std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool SelfPacedEnsemble::LowerToFlat(kernels::FlatProgram& program,
                                    kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* SelfPacedEnsemble::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> SelfPacedEnsemble::Clone() const {
  return std::make_unique<SelfPacedEnsemble>(config_, base_prototype_->Clone());
}

std::string SelfPacedEnsemble::Name() const {
  std::ostringstream os;
  os << "SPE" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
