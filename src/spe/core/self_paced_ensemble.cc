#include "spe/core/self_paced_ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numbers>
#include <sstream>
#include <utility>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/crc32.h"
#include "spe/common/fault.h"
#include "spe/common/parallel.h"
#include "spe/common/rng.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/metrics/metrics.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

namespace spe {
namespace {

// Rows per worker for the element-wise hardness / probability-sum
// updates: memory-bound loops only pay for fan-out on large majorities.
constexpr std::size_t kUpdateGrain = 4096;

// A NaN probability would silently poison every later hardness update
// (prob_sum is cumulative), and the eventual "hardness must be
// non-negative" abort points nowhere near the culprit. Fail here, naming
// the member that produced it.
void CheckProbsAreNotNan(const std::vector<double>& probs,
                         std::size_t member_index) {
  for (std::size_t m = 0; m < probs.size(); ++m) {
    SPE_CHECK(!std::isnan(probs[m]))
        << "base learner member " << member_index
        << " produced NaN probability for majority row " << m;
  }
}

}  // namespace

SelfPacedEnsemble::SelfPacedEnsemble(const SelfPacedEnsembleConfig& config)
    : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK_GT(config.num_bins, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

SelfPacedEnsemble::SelfPacedEnsemble(const SelfPacedEnsembleConfig& config,
                                     std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK_GT(config.num_bins, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
}

double SelfPacedEnsemble::AlphaAt(AlphaSchedule schedule, std::size_t i,
                                  std::size_t n) {
  SPE_CHECK_GE(i, 1u);
  SPE_CHECK_LE(i, n);
  // Progress in [0, 1] across the self-paced iterations. Algorithm 1
  // writes alpha = tan(i*pi/2n), but the surrounding text (and the
  // authors' released implementation) require alpha = 0 at the first
  // iteration and alpha -> inf at the last, so the schedule is evaluated
  // on (i-1)/(n-1).
  const double progress =
      n <= 1 ? 1.0
             : static_cast<double>(i - 1) / static_cast<double>(n - 1);
  switch (schedule) {
    case AlphaSchedule::kTan:
      if (progress >= 1.0) return std::numeric_limits<double>::infinity();
      return std::tan(progress * std::numbers::pi / 2.0);
    case AlphaSchedule::kZero:
      return 0.0;
    case AlphaSchedule::kInfinity:
      return std::numeric_limits<double>::infinity();
    case AlphaSchedule::kLinear:
      return 10.0 * progress;
  }
  SPE_CHECK(false) << "unhandled schedule";
  return 0.0;
}

void SelfPacedEnsemble::Fit(const DatasetView& train) {
  // Spans read the steady clock only — never the Rng — and gauges are
  // pure reporting, so instrumentation cannot perturb the bit-identical
  // determinism contract (docs/performance.md).
  const obs::TraceSpan fit_span("spe.fit");
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty()) << "SPE needs at least one minority sample";
  SPE_CHECK(!neg.empty()) << "SPE needs at least one majority sample";

  ensemble_ = VotingEnsemble();
  training_hardness_ = HardnessHistogram();
  Rng rng(config_.seed);
  // The whole self-paced loop runs on index arithmetic: the minority
  // prefix and every per-iteration majority pick are parent-absolute
  // row indices stacked into views — no row is ever copied. Row-major
  // views have no parent matrix to index into; materialize those once.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  }
  std::vector<std::size_t> pos_abs(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos_abs[i] = base.RowIndex(pos[i]);
  std::vector<std::size_t> neg_abs(neg.size());
  for (std::size_t i = 0; i < neg.size(); ++i) neg_abs[i] = base.RowIndex(neg[i]);
  const DatasetView majority = base.WithIndices(neg_abs);
  const HardnessFn hardness_fn = config_.custom_hardness
                                     ? config_.custom_hardness
                                     : MakeHardness(config_.hardness);

  auto make_member = [&](std::size_t index) {
    std::unique_ptr<Classifier> member = base_prototype_->Clone();
    member->Reseed(config_.seed + 7919 * (index + 1));
    return member;
  };
  // Reusable balanced-subset index buffer: the minority indices survive
  // as a fixed prefix; every iteration truncates back to them and
  // appends the fresh majority pick. The members fit through a view
  // over this buffer, so the per-iteration subset costs zero feature
  // copies (it used to be the dominant allocation in this loop).
  std::vector<std::size_t> subset_abs = pos_abs;
  subset_abs.reserve(2 * pos_abs.size());  // picks never exceed |P|
  auto rebuild_subset = [&](const std::vector<std::size_t>& majority_pick) {
    subset_abs.resize(pos_abs.size());
    for (std::size_t i : majority_pick) subset_abs.push_back(neg_abs[i]);
    return base.WithIndices(subset_abs);
  };

  const std::size_t n = config_.n_estimators;
  const bool checkpointing = !checkpoint_.directory.empty();
  std::string checkpoint_path;
  std::uint64_t config_fp = 0;
  std::uint64_t data_fp = 0;
  std::unique_ptr<checkpoint::AsyncCheckpointPublisher> ckpt_writer;
  if (checkpointing) {
    SPE_CHECK_GT(checkpoint_.every, 0u) << "checkpoint interval must be >= 1";
    checkpoint_path = checkpoint::CheckpointPath(checkpoint_.directory);
    config_fp = ConfigFingerprint();
    data_fp = checkpoint::DatasetFingerprint(train);
    if (validation_tracker_ != nullptr) {
      data_fp =
          checkpoint::HashCombine(data_fp, validation_tracker_->data_fingerprint);
    }
    ckpt_writer =
        std::make_unique<checkpoint::AsyncCheckpointPublisher>(checkpoint_path);
  }

  // Running sum of member probabilities over the majority set: F_i is the
  // average of f_0 .. f_{i-1} (Algorithm 1 line 4). PredictProba chunks
  // the majority rows across threads; the element-wise loops below do the
  // same, and both are bit-identical for any thread count because each
  // element is touched by exactly one fixed computation.
  std::vector<double> prob_sum;
  std::size_t prob_count = 0;
  std::size_t start_iteration = 1;

  // Pre-serialized member bytes in vote order. Members are immutable
  // once trained, so each is serialized exactly once and the bytes are
  // reused by every checkpoint this run writes — without this cache a
  // run checkpointing every iteration re-walks the whole ensemble per
  // iteration, O(n^2) member serializations overall.
  std::vector<std::string> member_blobs;
  const auto append_member_blob = [&](const Classifier& member) {
    if (!checkpointing) return;
    std::ostringstream os;
    SaveClassifier(member, os);
    member_blobs.push_back(os.str());
  };
  // f0's bytes when it votes but is not a member (the default): the
  // checkpoint must carry them because resume replays f0's probabilities
  // to rebuild prob_sum, and f0 lives nowhere else. Empty whenever f0 is
  // members[0] or checkpointing is off.
  std::string bootstrap_blob;
  bool resumed = false;
  std::uint64_t resumed_manifest_bytes = 0;

  if (checkpointing && checkpoint_.resume) {
    checkpoint::LoadResult loaded =
        checkpoint::LoadTrainerStateFromFile(checkpoint_path);
    if (loaded.missing) {
      std::fprintf(stderr, "[spe] no checkpoint at %s; training from scratch\n",
                   checkpoint_path.c_str());
    } else {
      const std::string reason = ValidateLoadedState(loaded, config_fp, data_fp);
      SPE_CHECK(reason.empty())
          << "cannot resume from " << checkpoint_path << ": " << reason;
      ensemble_ = std::move(loaded.members);
      for (std::size_t m = 0; m < ensemble_.size(); ++m) {
        append_member_blob(ensemble_.member(m));
      }
      bootstrap_blob = std::move(loaded.core.bootstrap_blob);
      prob_count = loaded.core.prob_count;
      start_iteration = loaded.core.next_iteration;
      std::istringstream rng_in(loaded.core.rng_state);
      rng_in >> rng.engine();
      SPE_CHECK(!rng_in.fail())
          << "cannot resume from " << checkpoint_path << ": bad rng state";

      // Rebuild the training accumulator by replaying every voter in its
      // original order: assign f0's probabilities, then += each member's.
      // Per element this is the same serial chain of additions the
      // uninterrupted run performed, so the result is bit-identical — the
      // checkpoint stores no accumulator at all (TrainerStateCore docs).
      std::unique_ptr<Classifier> f0_replay;
      const Classifier* first = nullptr;
      std::size_t member_start = 0;
      if (config_.include_bootstrap_model) {
        first = &ensemble_.member(0);
        member_start = 1;
      } else {
        std::istringstream blob_in(bootstrap_blob);
        f0_replay = LoadClassifier(blob_in);
        first = f0_replay.get();
      }
      {
        const obs::TraceSpan span("spe.fit.resume_replay");
        prob_sum = first->PredictProba(majority);
        for (std::size_t m = member_start; m < ensemble_.size(); ++m) {
          const std::vector<double> probs =
              ensemble_.member(m).PredictProba(majority);
          ParallelForGrain(0, prob_sum.size(), kUpdateGrain,
                           [&](std::size_t r) { prob_sum[r] += probs[r]; });
        }
      }

      if (validation_tracker_ != nullptr) {
        ValidationTracker& tracker = *validation_tracker_;
        tracker.best_auc = loaded.core.best_auc;
        tracker.best_size = loaded.core.best_size;
        // Same replay for the early-stop accumulator: re-score the member
        // prefix the original run had folded in, in order, with the exact
        // serial inner loop FitWithValidation's callback uses.
        SPE_CHECK(tracker.data != nullptr);
        SPE_CHECK_LE(loaded.core.scored_members, ensemble_.size());
        for (tracker.scored_members = 0;
             tracker.scored_members < loaded.core.scored_members;
             ++tracker.scored_members) {
          const std::vector<double> p =
              ensemble_.member(tracker.scored_members)
                  .PredictProba(*tracker.data);
          for (std::size_t r = 0; r < tracker.prob_sum.size(); ++r) {
            tracker.prob_sum[r] += p[r];
          }
        }
      }
      resumed = true;
      resumed_manifest_bytes = loaded.manifest_bytes;
      std::fprintf(stderr, "[spe] resumed from %s at iteration %zu/%zu\n",
                   checkpoint_path.c_str(), start_iteration, n);
    }
  }

  if (prob_count == 0) {
    // Line 2: bootstrap model f0 on a random balanced subset. It seeds the
    // hardness estimates; whether it votes in the final ensemble is the
    // include_bootstrap_model ablation. A resumed run skips all of this —
    // the replay above already folded f0's probabilities into prob_sum.
    std::vector<std::size_t> initial_pick(neg.size());
    if (neg.size() > pos.size()) {
      initial_pick = rng.SampleWithoutReplacement(neg.size(), pos.size());
    } else {
      for (std::size_t i = 0; i < neg.size(); ++i) initial_pick[i] = i;
    }
    std::unique_ptr<Classifier> bootstrap = make_member(0);
    const DatasetView subset = rebuild_subset(initial_pick);
    {
      const obs::TraceSpan span("spe.fit.member_fit");
      bootstrap->Fit(subset);
    }
    {
      const obs::TraceSpan span("spe.fit.member_predict");
      prob_sum = bootstrap->PredictProba(majority);
    }
    CheckProbsAreNotNan(prob_sum, 0);
    prob_count = 1;
    if (config_.include_bootstrap_model) {
      ensemble_.Add(std::move(bootstrap));
      append_member_blob(ensemble_.member(ensemble_.size() - 1));
    } else if (checkpointing) {
      std::ostringstream os;
      SaveClassifier(*bootstrap, os);
      bootstrap_blob = os.str();
    }
  }

  // Everything trained so far (f0 and, on resume, the restored members)
  // seeds the publisher's append-only member log; from here on each
  // iteration stages just its own member's bytes.
  if (checkpointing) {
    ckpt_writer->BeginLog(bootstrap_blob, member_blobs, resumed,
                          resumed_manifest_bytes);
  }

  std::vector<double> hardness(majority.num_rows());
  const bool instrumented = obs::Enabled();
  std::vector<std::size_t> bin_population;
  for (std::size_t i = start_iteration; i <= n; ++i) {
    // Lines 4-6: hardness of each majority sample w.r.t. the ensemble.
    {
      const obs::TraceSpan span("spe.fit.hardness");
      ParallelForGrain(0, majority.num_rows(), kUpdateGrain,
                       [&](std::size_t m) {
                         hardness[m] = hardness_fn(
                             prob_sum[m] / static_cast<double>(prob_count), 0);
                       });
    }
    // Lines 7-9: self-paced under-sampling with alpha_i.
    const double alpha = AlphaAt(config_.schedule, i, n);
    std::vector<std::size_t> pick;
    {
      const obs::TraceSpan span("spe.fit.under_sample");
      pick = SelfPacedUnderSample(hardness, alpha, config_.num_bins,
                                  pos_abs.size(), rng,
                                  instrumented ? &bin_population : nullptr);
    }
    if (instrumented) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("spe_fit_iterations_total").Add(1);
      registry.GetGauge("spe_fit_alpha").Set(alpha);
      for (std::size_t b = 0; b < bin_population.size(); ++b) {
        registry
            .GetGauge("spe_fit_bin_population{bin=\"" + std::to_string(b) +
                      "\"}")
            .Set(static_cast<double>(bin_population[b]));
      }
    }

    // Line 10: train f_i on the balanced subset.
    std::unique_ptr<Classifier> member = make_member(i);
    const DatasetView subset = rebuild_subset(pick);
    {
      const obs::TraceSpan span("spe.fit.member_fit");
      member->Fit(subset);
    }

    std::vector<double> member_probs;
    {
      const obs::TraceSpan span("spe.fit.member_predict");
      member_probs = member->PredictProba(majority);
    }
    CheckProbsAreNotNan(member_probs, i);
    ParallelForGrain(0, prob_sum.size(), kUpdateGrain, [&](std::size_t m) {
      prob_sum[m] += member_probs[m];
    });
    ++prob_count;

    ensemble_.Add(std::move(member));
    append_member_blob(ensemble_.member(ensemble_.size() - 1));
    if (checkpointing) ckpt_writer->AppendMember(member_blobs.back());
    if (callback_) {
      callback_(IterationInfo{i, ensemble_, subset});
    }

    // Checkpoint after the callback so FitWithValidation's early-stop
    // state for this iteration is already folded in. The final
    // iteration always checkpoints regardless of `every`, covering a
    // crash between the last member and the artifact publish.
    if (checkpointing && (i % checkpoint_.every == 0 || i == n)) {
      WriteCheckpoint(*ckpt_writer, config_fp, data_fp, i + 1, prob_count,
                      rng);
    }
    // Chaos crash point: SIGKILL here models preemption right after the
    // iteration's state was (or was not) persisted. The publish is
    // asynchronous, so an armed kill must first wait for the writer —
    // the contract is "crash after iteration N's checkpoint is durable".
    if (ckpt_writer != nullptr && Faults().enabled() &&
        Faults().config().crash_at_iteration == i) {
      ckpt_writer->Drain();
    }
    Faults().MaybeCrashAtIteration(i);
    if (checkpoint_.halt_after_iteration == i) {  // simulated crash
      ckpt_writer->Drain();
      return;
    }
  }

  // The final checkpoint (i == n) publishes concurrently with the
  // baseline pass below; the drain both surfaces any publish error and
  // guarantees the file is in place before Fit returns (spe_cli retires
  // it only after the model artifact lands).
  RecordHardnessBaseline(majority);
  if (ckpt_writer != nullptr) ckpt_writer->Drain();
}

std::uint64_t SelfPacedEnsemble::ConfigFingerprint() const {
  std::uint64_t h = checkpoint::HashCombine(0x7370652d666974ull,  // "spe-fit"
                                            config_.n_estimators);
  h = checkpoint::HashCombine(h, config_.num_bins);
  h = checkpoint::HashCombine(h, static_cast<std::uint64_t>(config_.hardness));
  h = checkpoint::HashCombine(h, static_cast<std::uint64_t>(config_.schedule));
  h = checkpoint::HashCombine(h, config_.include_bootstrap_model ? 1u : 0u);
  h = checkpoint::HashCombine(h, config_.seed);
  // A custom hardness closure has no stable identity; its presence bit
  // at least refuses resumes across custom/named hardness swaps.
  h = checkpoint::HashCombine(h, config_.custom_hardness ? 1u : 0u);
  return checkpoint::HashCombine(h, Crc32(base_prototype_->Name()));
}

std::string SelfPacedEnsemble::ValidateLoadedState(
    const checkpoint::LoadResult& loaded, std::uint64_t config_fp,
    std::uint64_t data_fp) const {
  if (!loaded.error.empty()) return loaded.error;
  const checkpoint::TrainerStateCore& core = loaded.core;
  if (core.config_fingerprint != config_fp) {
    return "checkpoint was written by a different trainer configuration";
  }
  if (core.data_fingerprint != data_fp) {
    return "checkpoint was written against different training data";
  }
  if (core.has_validation != (validation_tracker_ != nullptr)) {
    return core.has_validation
               ? "checkpoint carries validation state but plain Fit was called"
               : "checkpoint has no validation state but FitWithValidation "
                 "was called";
  }
  if (core.next_iteration < 1 ||
      core.next_iteration > config_.n_estimators + 1) {
    return "checkpoint iteration out of range";
  }
  const std::size_t expected_members =
      core.next_iteration - 1 + (config_.include_bootstrap_model ? 1 : 0);
  if (loaded.members.size() != expected_members) {
    return "checkpoint member count does not match its iteration";
  }
  // prob_count counts f0 plus one vote per completed iteration.
  if (core.prob_count != core.next_iteration) {
    return "checkpoint probability accumulator is inconsistent";
  }
  // Resume replays f0 to rebuild the accumulator, so its bytes must be
  // present exactly when f0 is not members[0].
  if (config_.include_bootstrap_model != core.bootstrap_blob.empty()) {
    return core.bootstrap_blob.empty()
               ? "checkpoint is missing the bootstrap model"
               : "checkpoint carries a bootstrap model it should not";
  }
  if (core.scored_members > loaded.members.size()) {
    return "checkpoint validation state scored more members than exist";
  }
  return "";
}

std::string SelfPacedEnsemble::CheckResumable(const DatasetView& train) const {
  if (checkpoint_.directory.empty()) return "";
  const checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(
      checkpoint::CheckpointPath(checkpoint_.directory));
  if (loaded.missing) return "";
  std::uint64_t data_fp = checkpoint::DatasetFingerprint(train);
  if (validation_tracker_ != nullptr) {
    data_fp =
        checkpoint::HashCombine(data_fp, validation_tracker_->data_fingerprint);
  }
  return ValidateLoadedState(loaded, ConfigFingerprint(), data_fp);
}

void SelfPacedEnsemble::WriteCheckpoint(
    checkpoint::AsyncCheckpointPublisher& publisher, std::uint64_t config_fp,
    std::uint64_t data_fp, std::size_t next_iteration,
    std::size_t prob_count, Rng& rng) {
  const obs::TraceSpan span("spe.fit.checkpoint");
  checkpoint::TrainerStateCore core;
  core.config_fingerprint = config_fp;
  core.data_fingerprint = data_fp;
  core.n_estimators = config_.n_estimators;
  core.include_bootstrap = config_.include_bootstrap_model;
  core.next_iteration = next_iteration;
  core.prob_count = prob_count;
  {
    std::ostringstream os;
    os << rng.engine();
    core.rng_state = os.str();
  }
  if (validation_tracker_ != nullptr) {
    core.has_validation = true;
    core.best_auc = validation_tracker_->best_auc;
    core.best_size = validation_tracker_->best_size;
    core.scored_members = validation_tracker_->scored_members;
  }
  publisher.Publish(core);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("spe_fit_checkpoints_total")
        .Add(1);
  }
}

void SelfPacedEnsemble::RecordHardnessBaseline(const DatasetView& majority) {
  // Freeze the drift baseline: hardness of the majority set under the
  // ensemble exactly as it will serve (PredictProba — not the self-paced
  // loop's prob_sum, which always includes the bootstrap model f0 even
  // when include_bootstrap_model leaves f0 out of the final vote; a
  // baseline binned over a different member set than the serving vote
  // alerts on in-distribution traffic). Pure reporting — no Rng draw, so
  // the determinism contract is untouched. Skipped for custom hardness
  // closures: the artifact could not name them for the live side to
  // rebuild (training_hardness() docs).
  training_hardness_ = HardnessHistogram();
  if (config_.custom_hardness || ensemble_.size() == 0) return;
  const obs::TraceSpan span("spe.fit.hardness_baseline");
  const std::vector<double> probs = PredictProba(majority);
  const HardnessFn hardness_fn = MakeHardness(config_.hardness);
  std::vector<double> hardness(probs.size());
  ParallelForGrain(0, probs.size(), kUpdateGrain, [&](std::size_t m) {
    hardness[m] = hardness_fn(probs[m], 0);
  });
  const HardnessBins bins = ComputeHardnessBins(hardness, config_.num_bins);
  training_hardness_.kind = HardnessName(config_.hardness);
  double min_h = hardness[0];
  double max_h = hardness[0];
  for (const double h : hardness) {
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);
  }
  training_hardness_.min = min_h;
  training_hardness_.max = max_h;
  training_hardness_.counts.assign(bins.population.begin(),
                                   bins.population.end());
}

std::size_t SelfPacedEnsemble::FitWithValidation(const DatasetView& train,
                                                 const DatasetView& validation) {
  train.CheckAlive();
  validation.CheckAlive();
  SPE_CHECK_GT(validation.CountPositives(), 0u)
      << "validation set needs positives to score AUCPRC";
  const std::vector<int> validation_labels = validation.LabelsVector();

  // Track the running validation score incrementally: each new member
  // contributes its probabilities once. Lives in a ValidationTracker so
  // Fit can checkpoint it alongside the training state and restore it
  // on resume — without it, a resumed early-stop run would forget which
  // prefix had already won.
  ValidationTracker tracker;
  tracker.data = &validation;
  tracker.prob_sum.assign(validation.num_rows(), 0.0);
  if (!checkpoint_.directory.empty()) {
    tracker.data_fingerprint = checkpoint::DatasetFingerprint(validation);
  }
  const IterationCallback user_callback = callback_;

  // If a base learner throws out of Fit, callback_ must not keep the
  // wrapper below — its captured locals die with this frame and the next
  // Fit would invoke a dangling closure (and validation_tracker_ would
  // dangle the same way). Scope guard restores both on every exit path.
  struct CallbackGuard {
    SelfPacedEnsemble* self;
    const IterationCallback* user;
    ~CallbackGuard() {
      self->callback_ = *user;
      self->validation_tracker_ = nullptr;
    }
  } guard{this, &user_callback};
  validation_tracker_ = &tracker;

  callback_ = [&](const IterationInfo& info) {
    // Fold in every member not yet scored, in ensemble order. With
    // include_bootstrap_model the first callback sees two new members
    // (f0 joined before f1's callback fired); walking the gap is what
    // keeps the bootstrap's probabilities from being skipped — the old
    // newest-member-only update silently disabled truncation for that
    // ablation.
    for (; tracker.scored_members < info.ensemble.size();
         ++tracker.scored_members) {
      const std::vector<double> p =
          info.ensemble.member(tracker.scored_members).PredictProba(validation);
      for (std::size_t i = 0; i < tracker.prob_sum.size(); ++i) {
        tracker.prob_sum[i] += p[i];
      }
    }
    std::vector<double> average(tracker.prob_sum);
    const double inv = 1.0 / static_cast<double>(info.ensemble.size());
    for (double& v : average) v *= inv;
    const double auc = AucPrc(validation_labels, average);
    if (auc > tracker.best_auc) {
      tracker.best_auc = auc;
      tracker.best_size = info.ensemble.size();
    }
    if (user_callback) user_callback(info);
  };
  Fit(train);

  SPE_CHECK_GT(tracker.best_size, 0u);
  const std::size_t best_size = tracker.best_size;
  ensemble_.Truncate(best_size);
  // The baseline Fit recorded covered the full ensemble; the truncated
  // prefix is what serves, so re-freeze it against that. Row-major
  // views are materialized first — they cannot stack an index view.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  }
  std::vector<std::size_t> neg = base.NegativeIndices();
  for (auto& r : neg) r = base.RowIndex(r);
  RecordHardnessBaseline(base.WithIndices(neg));
  return best_size;
}

double SelfPacedEnsemble::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> SelfPacedEnsemble::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

std::vector<double> SelfPacedEnsemble::PredictProbaPrefix(const DatasetView& data,
                                                          std::size_t k) const {
  return ensemble_.PredictProbaPrefix(data, k);
}

void SelfPacedEnsemble::AccumulateProbaInto(const DatasetView& data,
                                            std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool SelfPacedEnsemble::LowerToFlat(kernels::FlatProgram& program,
                                    kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* SelfPacedEnsemble::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> SelfPacedEnsemble::Clone() const {
  return std::make_unique<SelfPacedEnsemble>(config_, base_prototype_->Clone());
}

std::string SelfPacedEnsemble::Name() const {
  std::ostringstream os;
  os << "SPE" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
