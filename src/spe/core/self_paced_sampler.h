#ifndef SPE_CORE_SELF_PACED_SAMPLER_H_
#define SPE_CORE_SELF_PACED_SAMPLER_H_

#include <span>
#include <vector>

#include "spe/common/rng.h"
#include "spe/core/hardness.h"

namespace spe {

/// One self-paced harmonized under-sampling step (§V-A, lines 5-9 of
/// Algorithm 1): given the hardness of every majority sample w.r.t. the
/// current ensemble, selects `target_count` of them.
///
/// Mechanics: samples are cut into `num_bins` hardness bins; bin l gets
/// unnormalized weight p_l = 1 / (h_l + alpha) where h_l is its average
/// hardness; bin quotas are p_l / sum(p) * target_count, drawn without
/// replacement.
///   alpha = 0   — pure hardness harmonize: every bin contributes equal
///                 total hardness (Fig. 3b);
///   alpha -> inf — quotas approach uniform-over-bins, concentrating the
///                 pick on the sparse hard tail while a small skeleton of
///                 easy samples survives (Fig. 3d).
/// When a bin's quota exceeds its population the whole bin is taken and
/// the deficit is re-drawn uniformly from the remaining majority pool, so
/// exactly target_count indices come back (matching the reference
/// implementation's behaviour of always returning |P| samples).
///
/// Returns indices into `majority_hardness`.
///
/// `bin_population_out`, when non-null, reports how many samples were
/// drawn from each hardness bin (the Fig. 3 distribution): resized to
/// `num_bins` on the harmonized path, cleared on the degenerate paths
/// (take-everything, all-trivial random fallback). Pure reporting — it
/// never changes which samples are drawn or how the Rng advances.
std::vector<std::size_t> SelfPacedUnderSample(
    std::span<const double> majority_hardness, double alpha,
    std::size_t num_bins, std::size_t target_count, Rng& rng,
    std::vector<std::size_t>* bin_population_out = nullptr);

}  // namespace spe

#endif  // SPE_CORE_SELF_PACED_SAMPLER_H_
