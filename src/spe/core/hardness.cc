#include "spe/core/hardness.h"

#include <algorithm>
#include <cmath>

#include "spe/common/check.h"

namespace spe {

HardnessFn MakeHardness(HardnessKind kind) {
  switch (kind) {
    case HardnessKind::kAbsoluteError:
      return [](double prob, int label) {
        return std::abs(prob - static_cast<double>(label));
      };
    case HardnessKind::kSquaredError:
      return [](double prob, int label) {
        const double d = prob - static_cast<double>(label);
        return d * d;
      };
    case HardnessKind::kCrossEntropy:
      return [](double prob, int label) {
        constexpr double kEps = 1e-12;
        const double p = std::clamp(prob, kEps, 1.0 - kEps);
        return label == 1 ? -std::log(p) : -std::log(1.0 - p);
      };
  }
  SPE_CHECK(false) << "unhandled hardness kind";
  return {};
}

std::string HardnessName(HardnessKind kind) {
  switch (kind) {
    case HardnessKind::kAbsoluteError:
      return "AE";
    case HardnessKind::kSquaredError:
      return "SE";
    case HardnessKind::kCrossEntropy:
      return "CE";
  }
  return "?";
}

bool HardnessKindFromName(const std::string& name, HardnessKind* kind) {
  if (name == "AE") {
    *kind = HardnessKind::kAbsoluteError;
  } else if (name == "SE") {
    *kind = HardnessKind::kSquaredError;
  } else if (name == "CE") {
    *kind = HardnessKind::kCrossEntropy;
  } else {
    return false;
  }
  return true;
}

std::vector<double> ComputeHardness(const HardnessFn& fn,
                                    std::span<const double> probs,
                                    std::span<const int> labels) {
  SPE_CHECK_EQ(probs.size(), labels.size());
  std::vector<double> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) out[i] = fn(probs[i], labels[i]);
  return out;
}

HardnessBins ComputeHardnessBins(std::span<const double> hardness,
                                 std::size_t num_bins) {
  SPE_CHECK_GT(num_bins, 0u);
  SPE_CHECK(!hardness.empty());

  double min_h = hardness[0];
  double max_h = hardness[0];
  for (std::size_t i = 0; i < hardness.size(); ++i) {
    const double h = hardness[i];
    // NaN fails h >= 0 too, but "must be non-negative" sends whoever
    // debugs it hunting for a sign bug; name the real failure and where.
    SPE_CHECK(!std::isnan(h))
        << "hardness is NaN for sample " << i
        << " (a base learner emitted a NaN probability?)";
    SPE_CHECK_GE(h, 0.0) << "hardness must be non-negative, got " << h
                         << " for sample " << i;
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);
  }
  // Bins span the *observed* hardness range [min, max] (the authors'
  // implementation does the same). A fixed [0, 1] grid would waste most
  // bins whenever an ensemble's hardness concentrates near 0 — the
  // common case with tree bases — collapsing the paper's k = 20
  // resolution to a handful of effective bins. This also realizes the
  // "w.l.o.g. H in [0, 1]" normalization for unbounded functions (CE).
  const double range = max_h - min_h;

  HardnessBins bins;
  bins.population.assign(num_bins, 0);
  bins.contribution.assign(num_bins, 0.0);
  bins.mean_hardness.assign(num_bins, 0.0);
  bins.bin_of_sample.resize(hardness.size());

  for (std::size_t i = 0; i < hardness.size(); ++i) {
    std::size_t bin = 0;  // constant hardness: everything in bin 0
    if (range > 0.0) {
      const double normalized = (hardness[i] - min_h) / range;
      bin = static_cast<std::size_t>(normalized * static_cast<double>(num_bins));
      if (bin >= num_bins) bin = num_bins - 1;  // h == max -> top bin
    }
    bins.bin_of_sample[i] = bin;
    ++bins.population[bin];
    bins.contribution[bin] += hardness[i];
  }
  for (std::size_t b = 0; b < num_bins; ++b) {
    if (bins.population[b] > 0) {
      bins.mean_hardness[b] =
          bins.contribution[b] / static_cast<double>(bins.population[b]);
    }
  }
  return bins;
}

std::size_t HardnessBinIndex(double h, double min, double max,
                             std::size_t num_bins) {
  SPE_CHECK_GT(num_bins, 0u);
  const double range = max - min;
  if (!(range > 0.0)) return 0;  // degenerate training range: one bin
  const double normalized = (h - min) / range;
  if (normalized <= 0.0) return 0;  // below the training range
  const std::size_t bin =
      static_cast<std::size_t>(normalized * static_cast<double>(num_bins));
  return bin >= num_bins ? num_bins - 1 : bin;  // h >= max -> top bin
}

}  // namespace spe
