#ifndef SPE_CORE_HARDNESS_H_
#define SPE_CORE_HARDNESS_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace spe {

/// The "classification hardness" functions of §IV: any decomposable error
/// of a probabilistic prediction. H(x, y, F) is evaluated as
/// fn(F(x), y) where F(x) is the predicted positive probability.
enum class HardnessKind {
  kAbsoluteError,  // |F(x) - y|         — the paper's default
  kSquaredError,   // (F(x) - y)^2       — Brier score
  kCrossEntropy,   // -y log F - (1-y) log(1-F), unbounded above
};

/// A hardness function: (predicted probability, label) -> hardness >= 0.
using HardnessFn = std::function<double(double prob, int label)>;

/// Builds the hardness function for `kind`.
HardnessFn MakeHardness(HardnessKind kind);

/// Short name used in Fig. 8's legend: "AE", "SE", "CE".
std::string HardnessName(HardnessKind kind);

/// Evaluates hardness for every (probability, label) pair.
std::vector<double> ComputeHardness(const HardnessFn& fn,
                                    std::span<const double> probs,
                                    std::span<const int> labels);

/// Population and contribution per hardness bin — the statistics shown in
/// Fig. 3. The k bins split the *observed* hardness range [min, max]
/// evenly (matching the authors' released implementation and realizing
/// the paper's "w.l.o.g. H in [0,1]" normalization); the last bin is
/// closed above. Constant hardness degenerates to a single occupied bin.
struct HardnessBins {
  std::vector<std::size_t> population;    ///< samples per bin
  std::vector<double> contribution;       ///< total hardness per bin
  std::vector<double> mean_hardness;      ///< average hardness per bin (0 if empty)
  std::vector<std::size_t> bin_of_sample; ///< bin index of each input sample
};

HardnessBins ComputeHardnessBins(std::span<const double> hardness,
                                 std::size_t num_bins);

}  // namespace spe

#endif  // SPE_CORE_HARDNESS_H_
