#ifndef SPE_CORE_HARDNESS_H_
#define SPE_CORE_HARDNESS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace spe {

/// The "classification hardness" functions of §IV: any decomposable error
/// of a probabilistic prediction. H(x, y, F) is evaluated as
/// fn(F(x), y) where F(x) is the predicted positive probability.
enum class HardnessKind {
  kAbsoluteError,  // |F(x) - y|         — the paper's default
  kSquaredError,   // (F(x) - y)^2       — Brier score
  kCrossEntropy,   // -y log F - (1-y) log(1-F), unbounded above
};

/// A hardness function: (predicted probability, label) -> hardness >= 0.
using HardnessFn = std::function<double(double prob, int label)>;

/// Builds the hardness function for `kind`.
HardnessFn MakeHardness(HardnessKind kind);

/// Short name used in Fig. 8's legend: "AE", "SE", "CE".
std::string HardnessName(HardnessKind kind);

/// Inverse of HardnessName. Returns false (leaving *kind untouched) for
/// an unknown name — artifact headers are data, not trusted input.
bool HardnessKindFromName(const std::string& name, HardnessKind* kind);

/// Evaluates hardness for every (probability, label) pair.
std::vector<double> ComputeHardness(const HardnessFn& fn,
                                    std::span<const double> probs,
                                    std::span<const int> labels);

/// Population and contribution per hardness bin — the statistics shown in
/// Fig. 3. The k bins split the *observed* hardness range [min, max]
/// evenly (matching the authors' released implementation and realizing
/// the paper's "w.l.o.g. H in [0,1]" normalization); the last bin is
/// closed above. Constant hardness degenerates to a single occupied bin.
struct HardnessBins {
  std::vector<std::size_t> population;    ///< samples per bin
  std::vector<double> contribution;       ///< total hardness per bin
  std::vector<double> mean_hardness;      ///< average hardness per bin (0 if empty)
  std::vector<std::size_t> bin_of_sample; ///< bin index of each input sample
};

HardnessBins ComputeHardnessBins(std::span<const double> hardness,
                                 std::size_t num_bins);

/// A frozen hardness-bin histogram: the training-time distribution of
/// hardness over the majority set under the *final* ensemble, pinned at
/// save time so a serving process can compare live traffic against it
/// (spe/lifecycle/drift.h). `kind` is the HardnessName short code the
/// live side rebuilds the hardness function from; min/max are the
/// observed training range that fixes the bin edges (the same
/// even-split-of-[min,max] geometry as ComputeHardnessBins, last bin
/// closed above, out-of-range values clamped into the edge bins).
struct HardnessHistogram {
  std::string kind;  // "AE" | "SE" | "CE"
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> counts;

  bool empty() const { return counts.empty(); }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts) t += c;
    return t;
  }
};

/// Bin index of hardness value `h` under a HardnessHistogram's geometry:
/// ComputeHardnessBins's formula extended with clamping, so live values
/// outside the training range land in the edge bins instead of aborting.
std::size_t HardnessBinIndex(double h, double min, double max,
                             std::size_t num_bins);

/// Capability interface: models that carry a training-time hardness
/// histogram (SelfPacedEnsemble after Fit; VotingEnsembleModel restored
/// from a v3 bundle). Discovered via dynamic_cast at bundle-save time.
class HardnessProfiled {
 public:
  virtual ~HardnessProfiled() = default;

  /// The training-time histogram, or nullptr when none was recorded
  /// (unfitted model, custom hardness function, legacy artifact).
  virtual const HardnessHistogram* training_hardness() const = 0;
};

}  // namespace spe

#endif  // SPE_CORE_HARDNESS_H_
