#ifndef SPE_CORE_SELF_PACED_ENSEMBLE_H_
#define SPE_CORE_SELF_PACED_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/training_observer.h"
#include "spe/checkpoint/checkpoint.h"
#include "spe/core/hardness.h"
#include "spe/kernels/program.h"

namespace spe {

class Rng;

/// How the self-paced factor alpha evolves across iterations. kTan is the
/// paper's schedule; the others are ablations (DESIGN.md §4.1) isolating
/// what the schedule itself contributes.
enum class AlphaSchedule {
  kTan,       // alpha_i = tan((i-1)/(n-1) * pi/2): 0 first, inf last
  kZero,      // pure hardness harmonize in every iteration (Fig. 3b)
  kInfinity,  // pure uniform-over-bins from the start (Fig. 3d)
  kLinear,    // alpha grows linearly 0 -> 10
};

struct SelfPacedEnsembleConfig {
  std::size_t n_estimators = 10;  // "SPE10" everywhere in the paper
  std::size_t num_bins = 20;      // k; the paper's default (§VI footnote 3)
  HardnessKind hardness = HardnessKind::kAbsoluteError;  // paper default
  /// Optional user-supplied hardness function; overrides `hardness` when
  /// set. Any decomposable error of (predicted probability, label) works
  /// (§IV) — e.g. a focal-style error that amplifies confident mistakes.
  HardnessFn custom_hardness;
  AlphaSchedule schedule = AlphaSchedule::kTan;
  /// Algorithm 1 trains a bootstrap model f0 on a random balanced subset
  /// to obtain the initial hardness, but returns only f1..fn. Setting
  /// this keeps f0 in the final vote as well (ablation; the authors'
  /// released implementation keeps it).
  bool include_bootstrap_model = false;
  std::uint64_t seed = 0;
};

/// Crash-safe training knobs (docs/robustness.md). With `directory`
/// set, Fit publishes an atomically-written, CRC-checked checkpoint of
/// the full fit state after every `every`-th self-paced iteration, and
/// with `resume` continues a previous run from it instead of starting
/// over. The determinism contract extends across the crash: a run
/// killed at any iteration and resumed produces the same final
/// artifact, bit for bit, as an uninterrupted run — under any
/// SPE_THREADS setting, because the checkpoint captures the exact RNG
/// engine state and resume replays the deterministic probability
/// accumulation from the restored members.
struct FitCheckpointOptions {
  std::string directory;   ///< empty => checkpointing disabled
  std::size_t every = 1;   ///< checkpoint after every N-th iteration
  bool resume = false;     ///< continue from an existing checkpoint
  /// Tests only: return from Fit right after iteration N's checkpoint
  /// publishes — an in-process stand-in for SIGKILL that keeps the
  /// determinism matrix runnable inside one gtest binary. 0 = off.
  std::size_t halt_after_iteration = 0;
};

/// Self-paced Ensemble (Algorithm 1) — the paper's core contribution.
///
/// Iteratively: evaluate the hardness of every majority sample under the
/// current ensemble, cut the majority into k hardness bins, under-sample
/// a balanced subset with bin weights 1 / (h_l + alpha), and train the
/// next base model on it. Early iterations (alpha ~ 0) harmonize the
/// hardness contribution — emphasizing informative borderline samples
/// while noise cannot dominate; late iterations (alpha -> inf) focus on
/// hard samples while a skeleton of trivial samples survives, preventing
/// the overfitting that BalanceCascade exhibits (§VI-A.3).
///
/// Works with any base classifier (KNN, DT, MLP, SVM, boosted trees, ...)
/// because hardness is defined w.r.t. the model being built — no distance
/// metric is ever needed.
class SelfPacedEnsemble final : public Classifier,
                                public PrefixVoter,
                                public HardnessProfiled,
                                public kernels::FlatCompilable,
                                public kernels::FlatScorable {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit SelfPacedEnsemble(const SelfPacedEnsembleConfig& config = {});
  SelfPacedEnsemble(const SelfPacedEnsembleConfig& config,
                    std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;

  /// Fits like Fit, then keeps only the member prefix with the best
  /// AUCPRC on `validation` (which must keep its natural imbalanced
  /// distribution, like the paper's Ddev). Guards against the rare
  /// late-iteration degradation that Fig. 5 shows for noisy data.
  /// Applies with include_bootstrap_model too: f0 counts as the first
  /// prefix member there, so both §VI-C ablation settings run the same
  /// truncation procedure. Returns the chosen prefix length.
  std::size_t FitWithValidation(const DatasetView& train, const DatasetView& validation);

  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;

  /// PrefixVoter: score with only the first min(k, n) members — the
  /// serving layer's overload-degradation knob (the prefix average is
  /// itself a valid SPE hypothesis, just a coarser one).
  std::size_t NumPrefixMembers() const override { return ensemble_.size(); }
  std::vector<double> PredictProbaPrefix(const DatasetView& data,
                                         std::size_t k) const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  /// Observer called after each self-paced member is trained.
  void set_iteration_callback(IterationCallback callback) {
    callback_ = std::move(callback);
  }

  /// Installs the crash-safety knobs for subsequent Fit calls.
  void set_checkpoint_options(FitCheckpointOptions options) {
    checkpoint_ = std::move(options);
  }
  const FitCheckpointOptions& checkpoint_options() const {
    return checkpoint_;
  }

  /// Non-aborting resume preflight: "" when no checkpoint exists in the
  /// configured directory (fresh start) or when the checkpoint is
  /// usable for `train` under this configuration; otherwise the reason
  /// it would be refused (corruption, or a config/data fingerprint
  /// mismatch). spe_cli calls this before Fit so a broken checkpoint
  /// maps to the corrupt-artifact exit code instead of an abort.
  std::string CheckResumable(const DatasetView& train) const;

  /// Alpha used at self-paced iteration i (1-based) of n under `schedule`.
  /// Exposed for tests and for the Fig. 3 bench.
  static double AlphaAt(AlphaSchedule schedule, std::size_t i, std::size_t n);

  std::size_t NumMembers() const { return ensemble_.size(); }

  /// The trained members (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

  /// HardnessProfiled: the hardness-bin histogram of the majority set
  /// under the final ensemble, recorded by Fit. This is the §V-A
  /// statistic frozen as a drift baseline: SaveModelBundle embeds it in
  /// v3 artifacts and the serving layer compares live-traffic hardness
  /// bins against it (docs/lifecycle.md). Empty (nullptr) before Fit or
  /// when a custom hardness function is set — a custom closure cannot be
  /// named in the artifact, so the live side could not rebuild it.
  const HardnessHistogram* training_hardness() const override {
    return training_hardness_.empty() ? nullptr : &training_hardness_;
  }

 private:
  /// FitWithValidation's early-stop bookkeeping, lifted into a named
  /// struct so Fit can checkpoint and restore it: prob_sum accumulates
  /// member probabilities over the validation set, best_* track the
  /// best-scoring ensemble prefix, and data_fingerprint pins the
  /// checkpoint to the exact validation set.
  struct ValidationTracker {
    std::uint64_t data_fingerprint = 0;
    /// The validation set itself, for the resume path: checkpoints store
    /// only scored_members, and resume rebuilds prob_sum by replaying
    /// that member prefix over this view.
    const DatasetView* data = nullptr;
    std::vector<double> prob_sum;
    double best_auc = -1.0;
    std::size_t best_size = 0;
    std::size_t scored_members = 0;  // ensemble prefix already in prob_sum
  };

  /// 64-bit digest of every config field that changes what Fit computes.
  std::uint64_t ConfigFingerprint() const;

  /// "" when `loaded` can seed a resume under the given fingerprints;
  /// otherwise the refusal reason.
  std::string ValidateLoadedState(const checkpoint::LoadResult& loaded,
                                  std::uint64_t config_fp,
                                  std::uint64_t data_fp) const;

  /// Publishes the current fit state as the checkpoint for resuming at
  /// `next_iteration`. Only the manifest is framed here (scalars + RNG +
  /// early-stop state); the member bytes were already staged into the
  /// publisher's append-only log as they were trained, and the
  /// probability accumulators are recomputed at resume, never stored.
  /// `publisher` performs the actual file publish off the training
  /// thread.
  void WriteCheckpoint(checkpoint::AsyncCheckpointPublisher& publisher,
                       std::uint64_t config_fp, std::uint64_t data_fp,
                       std::size_t next_iteration, std::size_t prob_count,
                       Rng& rng);

  /// Re-bins the majority-set hardness under the current ensemble into
  /// training_hardness_ (the drift baseline of v3 artifacts). Called at
  /// the end of Fit and again after validation truncation, so the frozen
  /// distribution always matches the member set that actually votes.
  void RecordHardnessBaseline(const DatasetView& majority);

  SelfPacedEnsembleConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  VotingEnsemble ensemble_;
  IterationCallback callback_;
  HardnessHistogram training_hardness_;
  FitCheckpointOptions checkpoint_;
  /// Non-null only while FitWithValidation's frame is live; Fit uses it
  /// to include the early-stop state in checkpoints and restores.
  ValidationTracker* validation_tracker_ = nullptr;
};

}  // namespace spe

#endif  // SPE_CORE_SELF_PACED_ENSEMBLE_H_
