#include "spe/serve/server_stats.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace spe {
namespace {

// 8 sub-buckets per power of two: values below 8us get exact buckets,
// larger values share the top three significant bits. This bounds the
// relative error of any percentile estimate at 1/8 = 12.5% while the
// whole histogram stays a fixed 512-slot array of atomics.
constexpr int kSubBits = 3;
constexpr std::uint64_t kSub = 1u << kSubBits;

void UpdateMax(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t ServerStats::BucketIndex(std::uint64_t us) {
  if (us < kSub) return static_cast<std::size_t>(us);
  const int msb = std::bit_width(us) - 1;  // >= kSubBits
  const std::uint64_t sub = (us >> (msb - kSubBits)) & (kSub - 1);
  const std::size_t index =
      static_cast<std::size_t>(msb - kSubBits + 1) * kSub + sub;
  return index < kLatencyBuckets ? index : kLatencyBuckets - 1;
}

std::uint64_t ServerStats::BucketLowerBound(std::size_t index) {
  if (index < kSub) return index;
  const std::uint64_t octave = index / kSub - 1;
  const std::uint64_t sub = index % kSub;
  return (kSub + sub) << octave;
}

ServerStats::ServerStats() : start_(std::chrono::steady_clock::now()) {
  for (auto& b : latency_hist_) b.store(0, std::memory_order_relaxed);
  for (auto& b : batch_hist_) b.store(0, std::memory_order_relaxed);
}

void ServerStats::RecordRequest(std::uint64_t latency_us) {
  rows_.fetch_add(1, std::memory_order_relaxed);
  latency_hist_[BucketIndex(latency_us)].fetch_add(1,
                                                   std::memory_order_relaxed);
  UpdateMax(max_us_, latency_us);
}

void ServerStats::RecordBatch(std::uint64_t size, bool degraded) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_rows_.fetch_add(size, std::memory_order_relaxed);
  if (degraded) {
    degraded_batches_.fetch_add(1, std::memory_order_relaxed);
    degraded_rows_.fetch_add(size, std::memory_order_relaxed);
  }
  const std::size_t bucket = size == 0 ? 0 : std::bit_width(size) - 1;
  batch_hist_[bucket < kBatchBuckets ? bucket : kBatchBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  UpdateMax(max_batch_, size);
}

void ServerStats::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::RecordDeadlineExpired() {
  deadline_expired_.fetch_add(1, std::memory_order_relaxed);
}

double ServerStats::Percentile(
    const std::array<std::uint64_t, kLatencyBuckets>& counts,
    std::uint64_t total, double q) const {
  if (total == 0) return 0.0;
  // Rank of the q-th sample (1-based); walk buckets until reached, then
  // interpolate linearly inside the bucket.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(
          i + 1 < kLatencyBuckets ? BucketLowerBound(i + 1) : max_us_.load());
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[i]);
      const double estimate = lo + (hi > lo ? (hi - lo) * frac : 0.0);
      // Interpolation works on bucket bounds, which can exceed the
      // largest latency actually seen; the exact max caps it.
      const double exact_max =
          static_cast<double>(max_us_.load(std::memory_order_relaxed));
      return estimate < exact_max ? estimate : exact_max;
    }
    cumulative = next;
  }
  return static_cast<double>(max_us_.load(std::memory_order_relaxed));
}

ServeStatsSnapshot ServerStats::Snapshot() const {
  ServeStatsSnapshot s;
  std::array<std::uint64_t, kLatencyBuckets> lat;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    lat[i] = latency_hist_[i].load(std::memory_order_relaxed);
    total += lat[i];
  }
  s.rows = rows_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.degraded_batches = degraded_batches_.load(std::memory_order_relaxed);
  s.degraded_rows = degraded_rows_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  s.max_batch_size = max_batch_.load(std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  s.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  s.rows_per_sec =
      s.elapsed_s > 0 ? static_cast<double>(s.rows) / s.elapsed_s : 0.0;
  s.p50_us = Percentile(lat, total, 0.50);
  s.p95_us = Percentile(lat, total, 0.95);
  s.p99_us = Percentile(lat, total, 0.99);
  const std::uint64_t batch_rows = batch_rows_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(batch_rows) /
                          static_cast<double>(s.batches)
                    : 0.0;
  // Trim trailing empty buckets so the JSON stays short.
  std::size_t top = 0;
  std::vector<std::uint64_t> batch_hist(kBatchBuckets);
  for (std::size_t i = 0; i < kBatchBuckets; ++i) {
    batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
    if (batch_hist[i] != 0) top = i + 1;
  }
  batch_hist.resize(top);
  s.batch_size_hist = std::move(batch_hist);
  return s;
}

std::string ToJson(const ServeStatsSnapshot& s) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "{\"rows\":%" PRIu64 ",\"rows_per_sec\":%.1f,\"batches\":%" PRIu64
                ",\"mean_batch_size\":%.2f,\"max_batch_size\":%" PRIu64
                ",\"shed\":%" PRIu64 ",\"deadline_expired\":%" PRIu64
                ",\"degraded_batches\":%" PRIu64 ",\"degraded_rows\":%" PRIu64
                ",\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
                "\"max\":%" PRIu64 "},\"elapsed_s\":%.3f",
                s.rows, s.rows_per_sec, s.batches, s.mean_batch_size,
                s.max_batch_size, s.shed, s.deadline_expired,
                s.degraded_batches, s.degraded_rows, s.p50_us, s.p95_us,
                s.p99_us, s.max_us, s.elapsed_s);
  std::string out(buf);
  out += ",\"batch_size_hist\":[";
  for (std::size_t i = 0; i < s.batch_size_hist.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(s.batch_size_hist[i]);
  }
  out += "]}";
  return out;
}

StatsReporter::StatsReporter(const ServerStats& stats, std::ostream& os,
                             std::chrono::milliseconds interval)
    : stats_(stats), os_(os), interval_(interval) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      // Unlock while formatting/writing so Stop never waits on the
      // stream.
      lock.unlock();
      os_ << ToJson(stats_.Snapshot()) << '\n' << std::flush;
      lock.lock();
    }
  });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

StatsReporter::~StatsReporter() { Stop(); }

}  // namespace spe
