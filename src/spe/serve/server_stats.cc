#include "spe/serve/server_stats.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "spe/obs/metrics.h"

namespace spe {
namespace {

// 8 sub-buckets per power of two: values below 8us get exact buckets,
// larger values share the top three significant bits. This bounds the
// relative error of any percentile estimate at 1/8 = 12.5%.
constexpr int kLatencySubBits = 3;

void AppendCounter(std::string& out, const char* name, std::uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::size_t ServerStats::BucketIndex(std::uint64_t us) {
  const std::size_t index = obs::GeometricHistogram::IndexFor(kLatencySubBits, us);
  return index < kLatencyBuckets ? index : kLatencyBuckets - 1;
}

std::uint64_t ServerStats::BucketLowerBound(std::size_t index) {
  return obs::GeometricHistogram::LowerBoundFor(kLatencySubBits, index);
}

ServerStats::ServerStats()
    : start_(std::chrono::steady_clock::now()),
      latency_(kLatencySubBits, kLatencyBuckets),
      // sub_bits=0 gives size 0 its own bucket, so the power-of-two
      // buckets the snapshot exposes start one slot later.
      batch_(0, kBatchBuckets + 1) {}

void ServerStats::RecordRequest(std::uint64_t latency_us) {
  latency_.Record(latency_us);
}

void ServerStats::RecordBatch(std::uint64_t size, bool degraded) {
  batch_.Record(size);
  if (degraded) {
    degraded_batches_.fetch_add(1, std::memory_order_relaxed);
    degraded_rows_.fetch_add(size, std::memory_order_relaxed);
  }
}

void ServerStats::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::RecordDeadlineExpired() {
  deadline_expired_.fetch_add(1, std::memory_order_relaxed);
}

ServeStatsSnapshot ServerStats::Snapshot() const {
  ServeStatsSnapshot s;
  s.rows = latency_.count();
  s.batches = batch_.count();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.degraded_batches = degraded_batches_.load(std::memory_order_relaxed);
  s.degraded_rows = degraded_rows_.load(std::memory_order_relaxed);
  s.max_us = latency_.max();
  s.max_batch_size = batch_.max();
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  s.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  s.rows_per_sec =
      s.elapsed_s > 0 ? static_cast<double>(s.rows) / s.elapsed_s : 0.0;
  s.p50_us = latency_.Percentile(0.50);
  s.p95_us = latency_.Percentile(0.95);
  s.p99_us = latency_.Percentile(0.99);
  const std::uint64_t batch_rows = batch_.sum();
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(batch_rows) /
                          static_cast<double>(s.batches)
                    : 0.0;
  // The snapshot's bucket i is [2^i, 2^(i+1)), which is the backing
  // histogram's bucket i+1; fold the histogram's size-0 bucket into
  // slot 0 so no batch ever goes unreported. Trim trailing empty
  // buckets so the JSON stays short.
  std::size_t top = 0;
  std::vector<std::uint64_t> batch_hist(kBatchBuckets);
  for (std::size_t i = 0; i < kBatchBuckets; ++i) {
    batch_hist[i] = batch_.bucket_count(i + 1);
    if (i == 0) batch_hist[i] += batch_.bucket_count(0);
    if (batch_hist[i] != 0) top = i + 1;
  }
  batch_hist.resize(top);
  s.batch_size_hist = std::move(batch_hist);
  return s;
}

void ServerStats::AppendExposition(std::string& out) const {
  AppendCounter(out, "spe_serve_requests_total", latency_.count());
  AppendCounter(out, "spe_serve_batches_total", batch_.count());
  AppendCounter(out, "spe_serve_batch_rows_total", batch_.sum());
  AppendCounter(out, "spe_serve_shed_total",
                shed_.load(std::memory_order_relaxed));
  AppendCounter(out, "spe_serve_deadline_expired_total",
                deadline_expired_.load(std::memory_order_relaxed));
  AppendCounter(out, "spe_serve_degraded_batches_total",
                degraded_batches_.load(std::memory_order_relaxed));
  AppendCounter(out, "spe_serve_degraded_rows_total",
                degraded_rows_.load(std::memory_order_relaxed));
  out += "# TYPE spe_serve_latency_us histogram\n";
  obs::AppendHistogramExposition(out, "spe_serve_latency_us", latency_);
  out += "# TYPE spe_serve_batch_size histogram\n";
  obs::AppendHistogramExposition(out, "spe_serve_batch_size", batch_);
}

std::string ToJson(const ServeStatsSnapshot& s) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "{\"rows\":%" PRIu64 ",\"rows_per_sec\":%.1f,\"batches\":%" PRIu64
                ",\"mean_batch_size\":%.2f,\"max_batch_size\":%" PRIu64
                ",\"shed\":%" PRIu64 ",\"deadline_expired\":%" PRIu64
                ",\"degraded_batches\":%" PRIu64 ",\"degraded_rows\":%" PRIu64
                ",\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
                "\"max\":%" PRIu64 "},\"elapsed_s\":%.3f",
                s.rows, s.rows_per_sec, s.batches, s.mean_batch_size,
                s.max_batch_size, s.shed, s.deadline_expired,
                s.degraded_batches, s.degraded_rows, s.p50_us, s.p95_us,
                s.p99_us, s.max_us, s.elapsed_s);
  std::string out(buf);
  out += ",\"batch_size_hist\":[";
  for (std::size_t i = 0; i < s.batch_size_hist.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(s.batch_size_hist[i]);
  }
  out += "]}";
  return out;
}

StatsReporter::StatsReporter(const ServerStats& stats, std::ostream& os,
                             std::chrono::milliseconds interval)
    : stats_(stats), os_(os), interval_(interval) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      // Unlock while formatting/writing so Stop never waits on the
      // stream.
      lock.unlock();
      os_ << ToJson(stats_.Snapshot()) << '\n' << std::flush;
      lock.lock();
    }
  });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

StatsReporter::~StatsReporter() { Stop(); }

}  // namespace spe
