#include "spe/serve/batch_scorer.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "spe/common/check.h"
#include "spe/common/fault.h"
#include "spe/common/parallel.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/trace.h"

namespace spe {

namespace {

std::shared_ptr<lifecycle::ModelRegistry> PrivateRegistry(
    std::unique_ptr<Classifier> model, std::size_t num_features) {
  SPE_CHECK(model != nullptr);
  SPE_CHECK_GT(num_features, 0u);
  auto registry = std::make_shared<lifecycle::ModelRegistry>();
  const std::string error =
      registry->Activate(registry->Install(std::move(model), num_features));
  SPE_CHECK(error.empty()) << error;
  return registry;
}

}  // namespace

BatchScorer::BatchScorer(std::unique_ptr<Classifier> model,
                         std::size_t num_features, BatchScorerConfig config)
    : BatchScorer(PrivateRegistry(std::move(model), num_features),
                  std::move(config)) {}

BatchScorer::BatchScorer(std::shared_ptr<lifecycle::ModelRegistry> registry,
                         BatchScorerConfig config)
    : registry_(std::move(registry)),
      num_features_(registry_ != nullptr && registry_->active() != nullptr
                        ? registry_->active()->num_features()
                        : 0),
      config_(config),
      queue_(config.queue_capacity),
      shadow_batches_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_shadow_batches_total")),
      shadow_rows_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_shadow_rows_total")),
      shadow_disagree_total_(obs::MetricsRegistry::Global().GetCounter(
          "spe_lifecycle_shadow_disagree_total")),
      shadow_absdiff_ppm_(obs::MetricsRegistry::Global().GetHistogram(
          "spe_lifecycle_shadow_absdiff_ppm", /*sub_bits=*/3,
          obs::GeometricHistogram::IndexFor(3, 1'000'000) + 1)) {
  SPE_CHECK(registry_ != nullptr);
  SPE_CHECK(registry_->active() != nullptr)
      << "the registry must have an active version before serving";
  SPE_CHECK_GT(num_features_, 0u);
  SPE_CHECK_GT(config_.max_batch_size, 0u);
  if (config_.degrade_high_watermark > 0) {
    SPE_CHECK(registry_->active()->prefix_voter() != nullptr)
        << "degradation watermarks require an ensemble model that supports "
           "prefix scoring (PrefixVoter); "
        << registry_->active()->model().Name() << " does not";
    SPE_CHECK_GT(config_.degrade_prefix, 0u);
    SPE_CHECK_LT(config_.degrade_low_watermark, config_.degrade_high_watermark)
        << "degrade_low_watermark must be below degrade_high_watermark";
  }
  const std::size_t n =
      config_.num_workers > 0 ? config_.num_workers : NumThreads();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  metrics_collector_ =
      obs::MetricsRegistry::Global().AddCollector([this](std::string& out) {
        stats_.AppendExposition(out);
        out += "# TYPE spe_serve_queue_depth gauge\nspe_serve_queue_depth ";
        out += std::to_string(queue_.size());
        out += "\n# TYPE spe_serve_degraded gauge\nspe_serve_degraded ";
        out += degraded_.load(std::memory_order_relaxed) ? "1\n" : "0\n";
        out += "# TYPE spe_serve_workers gauge\nspe_serve_workers ";
        out += std::to_string(workers_.size());
        out += "\n# TYPE spe_serve_kernel_flat gauge\nspe_serve_kernel_flat ";
        const auto active = registry_->active();
        out += active != nullptr && active->kernel()[0] == 'f' ? "1\n" : "0\n";
        // Which representation is actually serving ("flat", "flat_f32",
        // "flat_binned" or "reference") plus the descent ISA — the
        // label an operator checks after flipping --kernel-mode.
        out += "# TYPE spe_serve_kernel_info gauge\nspe_serve_kernel_info{";
        out += "kernel=\"";
        out += active != nullptr ? active->kernel() : "reference";
        out += "\",simd=\"";
        out += kernels::SimdEnabled() ? kernels::SimdIsa() : "scalar";
        out += "\"} 1\n";
      });
}

BatchScorer::~BatchScorer() { Shutdown(); }

std::future<ScoreResult> BatchScorer::Submit(
    std::vector<double> features,
    std::chrono::steady_clock::time_point deadline) {
  SPE_CHECK_EQ(features.size(), num_features_)
      << "submitted row width does not match the model schema";
  Request req;
  req.features = std::move(features);
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = deadline;
  std::future<ScoreResult> future = req.promise.emplace().get_future();
  const bool accepted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.Push(std::move(req))
                            : queue_.TryPush(std::move(req));
  if (!accepted) {
    // Push/TryPush moved-from only on success; on failure the request
    // (and its promise) is destroyed inside the call, so re-create the
    // rejection here through a fresh promise.
    const bool closed = queue_.closed();
    if (!closed) stats_.RecordShed();
    std::promise<ScoreResult> rejected;
    rejected.set_exception(std::make_exception_ptr(ScorerOverloaded(
        closed ? "scorer is shut down" : "request queue full")));
    return rejected.get_future();
  }
  return future;
}

void BatchScorer::SubmitCallback(std::vector<double> features,
                                 std::chrono::steady_clock::time_point deadline,
                                 ScoreCallback done) {
  SPE_CHECK_EQ(features.size(), num_features_)
      << "submitted row width does not match the model schema";
  SPE_CHECK(done != nullptr);
  Request req;
  req.features = std::move(features);
  req.done = std::move(done);
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = deadline;
  // The Keep variants leave `req` intact on refusal, so the rejection
  // can travel through the caller's own callback with its pooled
  // feature buffer attached — nothing is lost inside the queue.
  const bool accepted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.PushKeep(req)
                            : queue_.TryPushKeep(req);
  if (!accepted) {
    const bool closed = queue_.closed();
    if (!closed) stats_.RecordShed();
    req.done({}, std::make_exception_ptr(ScorerOverloaded(
                  closed ? "scorer is shut down" : "request queue full")),
             std::move(req.features));
  }
}

void BatchScorer::Complete(Request& r, ScoreResult result,
                           std::exception_ptr error) {
  if (r.done) {
    r.done(result, std::move(error), std::move(r.features));
  } else if (error != nullptr) {
    r.promise->set_exception(std::move(error));
  } else {
    r.promise->set_value(result);
  }
}

double BatchScorer::Score(std::vector<double> features) {
  return Submit(std::move(features)).get().proba;
}

std::vector<double> BatchScorer::ScoreBatch(const DatasetView& rows) {
  SPE_CHECK_EQ(rows.num_features(), num_features_);
  rows.CheckAlive();
  std::vector<std::future<ScoreResult>> futures;
  futures.reserve(rows.num_rows());
  for (std::size_t i = 0; i < rows.num_rows(); ++i) {
    Request req;
    req.features.resize(num_features_);
    rows.CopyRowTo(i, req.features);
    req.enqueued = std::chrono::steady_clock::now();
    futures.push_back(req.promise.emplace().get_future());
    // Offline scoring always blocks: shedding rows out of a file-scoring
    // run would silently truncate the output.
    SPE_CHECK(queue_.Push(std::move(req))) << "scorer is shut down";
  }
  std::vector<double> probs(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    probs[i] = futures[i].get().proba;
  }
  return probs;
}

void BatchScorer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();
    for (auto& w : workers_) w.join();
  });
}

void BatchScorer::ShadowScore(const DatasetView& rows,
                              std::span<const double> active_probs,
                              const lifecycle::ModelVersion& active) {
  const auto shadow = registry_->shadow();
  if (shadow == nullptr || &*shadow == &active) return;
  if (shadow->num_features() != num_features_) return;
  const std::uint64_t tick =
      shadow_tick_.fetch_add(1, std::memory_order_relaxed);
  if (tick % config_.shadow_every != 0) return;
  const obs::TraceSpan span("serve.shadow_batch");
  const std::vector<double> shadow_probs = shadow->model().PredictProba(rows);
  shadow_batches_total_.Add();
  shadow_rows_total_.Add(rows.num_rows());
  std::uint64_t disagreements = 0;
  for (std::size_t i = 0; i < shadow_probs.size(); ++i) {
    const double diff = std::abs(shadow_probs[i] - active_probs[i]);
    // Histogram values are integers; parts-per-million keeps three
    // useful significant digits of a [0, 1] probability delta.
    shadow_absdiff_ppm_.Record(
        static_cast<std::uint64_t>(std::lround(diff * 1e6)));
    if ((shadow_probs[i] >= 0.5) != (active_probs[i] >= 0.5)) ++disagreements;
  }
  if (disagreements > 0) shadow_disagree_total_.Add(disagreements);
}

void BatchScorer::WorkerLoop() {
  std::vector<Request> batch;
  std::vector<Request*> live;  // batch members still worth scoring
  // Per-worker staging reused across batches: requests land in a flat
  // row-major block served to the model through a borrowed view, so the
  // dispatch path never builds a columnar Dataset per batch.
  std::vector<double> row_block;
  std::vector<int> row_labels;
  const std::vector<FeatureKind> kinds(num_features_, FeatureKind::kNumerical);
  const std::chrono::microseconds delay(config_.max_batch_delay_us);
  while (queue_.PopBatch(batch, config_.max_batch_size, delay) > 0) {
    // Fault point: simulate a slow model *before* deadline triage, so a
    // fault-injected run deterministically expires queued deadlines.
    Faults().InjectScoreDelay();

    // One lock-free snapshot per batch: the whole batch — scoring,
    // degradation, shadow diffing, drift observation — runs against
    // this version even if a reload swaps the active pointer mid-batch.
    // The shared_ptr keeps the version (and its compiled kernel) alive
    // until the last in-flight batch lets go.
    const std::shared_ptr<const lifecycle::ModelVersion> version =
        registry_->active();

    // Watermark controller. The signal is the backlog left behind this
    // pop — what the *next* request will sit behind. Shared mode with
    // hysteresis: all workers degrade together, which keeps the
    // "degraded" marking consistent with what clients experience.
    bool degraded = false;
    if (config_.degrade_high_watermark > 0) {
      const std::size_t backlog = queue_.size();
      bool mode = degraded_.load(std::memory_order_relaxed);
      if (!mode && backlog >= config_.degrade_high_watermark) {
        mode = true;
      } else if (mode && backlog <= config_.degrade_low_watermark) {
        mode = false;
      }
      degraded_.store(mode, std::memory_order_relaxed);
      // A hot-reloaded version might not support prefix scoring even
      // though the boot-time one did; it serves full ensembles instead
      // of aborting mid-traffic.
      degraded = mode && version->prefix_voter() != nullptr;
    }

    // Deadline triage: a request whose deadline passed while queued is
    // failed fast and never reaches the model.
    const auto now = std::chrono::steady_clock::now();
    live.clear();
    live.reserve(batch.size());
    for (Request& r : batch) {
      if (r.deadline != kNoDeadline && r.deadline < now) {
        stats_.RecordDeadlineExpired();
        Complete(r, {}, std::make_exception_ptr(DeadlineExceeded()));
      } else {
        live.push_back(&r);
      }
    }
    if (live.empty()) continue;

    try {
      // Batch granularity keeps tracing out of the per-row path. The
      // span closes before any promise is fulfilled, so a client that
      // has seen its response (and then scrapes !stats) also sees the
      // span that scored it.
      std::vector<double> probs;
      row_block.resize(live.size() * num_features_);
      row_labels.assign(live.size(), 0);
      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::vector<double>& src = live[i]->features;
        std::copy(src.begin(), src.end(),
                  row_block.begin() +
                      static_cast<std::ptrdiff_t>(i * num_features_));
      }
      const DatasetView rows = DatasetView::FromRows(
          row_block.data(), live.size(), num_features_, row_labels.data(),
          kinds);
      {
        const obs::TraceSpan span("serve.score_batch");
        probs = degraded ? version->prefix_voter()->PredictProbaPrefix(
                               rows, config_.degrade_prefix)
                         : version->model().PredictProba(rows);
      }
      if (!degraded) {
        // Lifecycle taps see only full-fidelity scores: a degraded
        // prefix shifts the distribution for reasons that are about
        // load, not data, and would poison both comparisons.
        if (config_.shadow_every > 0) ShadowScore(rows, probs, *version);
        if (auto* drift = version->drift()) {
          drift->ObserveBatch(probs);
          drift->Publish();
        }
      }
      const auto done = std::chrono::steady_clock::now();
      stats_.RecordBatch(live.size(), degraded);
      for (std::size_t i = 0; i < live.size(); ++i) {
        const auto waited = done - live[i]->enqueued;
        stats_.RecordRequest(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(waited)
                .count()));
        Complete(*live[i], {probs[i], degraded}, nullptr);
      }
    } catch (...) {
      // A model that throws poisons only the requests in this batch —
      // the worker and every other queued request keep going.
      const std::exception_ptr error = std::current_exception();
      for (Request* r : live) Complete(*r, {}, error);
    }
  }
}

}  // namespace spe
