#include "spe/serve/batch_scorer.h"

#include <exception>
#include <utility>

#include "spe/common/check.h"
#include "spe/common/parallel.h"

namespace spe {

BatchScorer::BatchScorer(std::unique_ptr<Classifier> model,
                         std::size_t num_features, BatchScorerConfig config)
    : model_(std::move(model)),
      num_features_(num_features),
      config_(config),
      queue_(config.queue_capacity) {
  SPE_CHECK(model_ != nullptr);
  SPE_CHECK_GT(num_features_, 0u);
  SPE_CHECK_GT(config_.max_batch_size, 0u);
  const std::size_t n =
      config_.num_workers > 0 ? config_.num_workers : NumThreads();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchScorer::~BatchScorer() { Shutdown(); }

std::future<double> BatchScorer::Submit(std::vector<double> features) {
  SPE_CHECK_EQ(features.size(), num_features_)
      << "submitted row width does not match the model schema";
  Request req;
  req.features = std::move(features);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<double> future = req.promise.get_future();
  const bool accepted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.Push(std::move(req))
                            : queue_.TryPush(std::move(req));
  if (!accepted) {
    // Push/TryPush moved-from only on success; on failure the request
    // (and its promise) is destroyed inside the call, so re-create the
    // rejection here through a fresh promise.
    const bool closed = queue_.closed();
    if (!closed) stats_.RecordShed();
    std::promise<double> rejected;
    rejected.set_exception(std::make_exception_ptr(ScorerOverloaded(
        closed ? "scorer is shut down" : "request queue full")));
    return rejected.get_future();
  }
  return future;
}

double BatchScorer::Score(std::vector<double> features) {
  return Submit(std::move(features)).get();
}

std::vector<double> BatchScorer::ScoreBatch(const Dataset& rows) {
  SPE_CHECK_EQ(rows.num_features(), num_features_);
  std::vector<std::future<double>> futures;
  futures.reserve(rows.num_rows());
  for (std::size_t i = 0; i < rows.num_rows(); ++i) {
    const auto row = rows.Row(i);
    Request req;
    req.features.assign(row.begin(), row.end());
    req.enqueued = std::chrono::steady_clock::now();
    futures.push_back(req.promise.get_future());
    // Offline scoring always blocks: shedding rows out of a file-scoring
    // run would silently truncate the output.
    SPE_CHECK(queue_.Push(std::move(req))) << "scorer is shut down";
  }
  std::vector<double> probs(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) probs[i] = futures[i].get();
  return probs;
}

void BatchScorer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();
    for (auto& w : workers_) w.join();
  });
}

void BatchScorer::WorkerLoop() {
  std::vector<Request> batch;
  const std::chrono::microseconds delay(config_.max_batch_delay_us);
  while (queue_.PopBatch(batch, config_.max_batch_size, delay) > 0) {
    Dataset rows(num_features_);
    rows.Reserve(batch.size());
    for (const Request& r : batch) rows.AddRow(r.features, /*label=*/0);
    try {
      const std::vector<double> probs = model_->PredictProba(rows);
      const auto done = std::chrono::steady_clock::now();
      stats_.RecordBatch(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto waited = done - batch[i].enqueued;
        stats_.RecordRequest(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(waited)
                .count()));
        batch[i].promise.set_value(probs[i]);
      }
    } catch (...) {
      // A model that throws poisons only the requests in this batch —
      // the worker and every other queued request keep going.
      const std::exception_ptr error = std::current_exception();
      for (Request& r : batch) r.promise.set_exception(error);
    }
  }
}

}  // namespace spe
