#ifndef SPE_SERVE_SERVER_STATS_H_
#define SPE_SERVE_SERVER_STATS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "spe/obs/histogram.h"

namespace spe {

/// Point-in-time view of a ServerStats. Percentiles are estimated from
/// the fixed-bucket histogram (geometric buckets, 8 per power of two,
/// so estimates carry at most ~12.5% relative error); max is exact.
struct ServeStatsSnapshot {
  std::uint64_t rows = 0;      // completed single-row requests
  std::uint64_t batches = 0;   // micro-batches dispatched to the model
  std::uint64_t shed = 0;      // requests rejected by load shedding
  std::uint64_t deadline_expired = 0;  // failed while queued, never scored
  std::uint64_t degraded_batches = 0;  // scored with an ensemble prefix
  std::uint64_t degraded_rows = 0;     // rows inside those batches
  double elapsed_s = 0.0;      // since stats creation / last Reset
  double rows_per_sec = 0.0;   // rows / elapsed_s
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t max_us = 0;
  double mean_batch_size = 0.0;
  std::uint64_t max_batch_size = 0;
  /// batch_size_hist[i] counts batches with size in [2^i, 2^(i+1)).
  std::vector<std::uint64_t> batch_size_hist;
};

/// Renders a snapshot as a single-line JSON object (stable key order,
/// suitable for log scraping and for the bench report).
std::string ToJson(const ServeStatsSnapshot& s);

/// Lock-free (atomic counter) request/latency accounting shared by every
/// worker and producer thread of a BatchScorer, built on the shared
/// obs::GeometricHistogram geometry. All Record* methods are safe to
/// call concurrently; Snapshot is safe concurrently with recording (it
/// reads a consistent-enough view for monitoring — counts may be
/// mid-update across histograms, which is fine for observability).
class ServerStats {
 public:
  ServerStats();

  /// One completed request with end-to-end (enqueue -> response ready)
  /// latency in microseconds.
  void RecordRequest(std::uint64_t latency_us);

  /// One micro-batch of `size` rows dispatched to the model.
  /// `degraded` marks batches scored with an ensemble prefix under
  /// overload degradation.
  void RecordBatch(std::uint64_t size, bool degraded = false);

  /// One request rejected because the queue was full (shed policy).
  void RecordShed();

  /// One request whose deadline expired while queued (failed without
  /// being scored).
  void RecordDeadlineExpired();

  ServeStatsSnapshot Snapshot() const;

  /// Appends this instance's metrics in exposition format: the
  /// spe_serve_* counter family plus the spe_serve_latency_us and
  /// spe_serve_batch_size histograms (docs/observability.md).
  void AppendExposition(std::string& out) const;

  /// Number of latency histogram buckets (geometric; see
  /// BucketLowerBound). 488 is the largest count whose top bucket's
  /// lower bound still fits in 64 bits — anything slower lands in the
  /// last bucket. Exposed for tests.
  static constexpr std::size_t kLatencyBuckets = 488;

  /// Index of the histogram bucket for a microsecond value, and the
  /// inclusive lower bound of bucket `index`. Thin wrappers over the
  /// shared obs::GeometricHistogram geometry; exposed for tests.
  static std::size_t BucketIndex(std::uint64_t us);
  static std::uint64_t BucketLowerBound(std::size_t index);

 private:
  // Snapshot exposes batch buckets as [2^i, 2^(i+1)) for i < 24; the
  // backing histogram needs one extra slot because its sub_bits=0
  // layout gives size 0 a bucket of its own.
  static constexpr std::size_t kBatchBuckets = 24;

  std::chrono::steady_clock::time_point start_;
  obs::GeometricHistogram latency_;
  obs::GeometricHistogram batch_;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> degraded_batches_{0};
  std::atomic<std::uint64_t> degraded_rows_{0};
};

/// Background thread that prints a one-line JSON snapshot of a
/// ServerStats to `os` every `interval`. The destructor (or Stop) joins
/// the thread promptly — it does not wait out the current interval.
class StatsReporter {
 public:
  StatsReporter(const ServerStats& stats, std::ostream& os,
                std::chrono::milliseconds interval);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Stop();

 private:
  const ServerStats& stats_;
  std::ostream& os_;
  const std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace spe

#endif  // SPE_SERVE_SERVER_STATS_H_
