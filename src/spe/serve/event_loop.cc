#include "spe/serve/event_loop.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "spe/common/check.h"
#include "spe/serve/server_stats.h"
#include "spe/serve/wire.h"

namespace spe::serve {
namespace {

constexpr std::uint64_t kListenerToken = 0;
constexpr std::uint64_t kWakeToken = 1;

/// The capacity refusal line, byte-identical to the old server's.
constexpr char kCapacityRefusal[] = "ERR server at connection capacity\n";

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// One queued response slot. Responses are written strictly in deque
/// order per connection; a slot is written once `ready` (kScore and
/// kReload resolve asynchronously) or, for the snapshot kinds, rendered
/// lazily the moment the slot reaches the head — after every earlier
/// response has been formatted into the output buffer, so the snapshot
/// covers the same completed requests the old writer thread's
/// render-at-write saw.
struct EventLoop::Pending {
  enum class Kind : unsigned char {
    kImmediate,  // response already formatted (parse errors, width errors)
    kScore,      // waiting on a scorer callback
    kStats,      // rendered at deque head
    kMetrics,    // rendered at deque head
    kReload,     // fired at deque head, waiting on the reload callback
  };
  Kind kind = Kind::kImmediate;
  bool binary = false;          // response framing (wire.h vs text line)
  std::uint64_t bin_id = 0;     // binary score/error frames echo this
  ServeRequest request;         // text formatting context (json flag, id)
  std::string reload_path;
  std::string response;         // framed bytes, '\n' included for text
  std::atomic<bool> ready{false};
  bool fired = false;           // kReload: reload_fn already dispatched
};

/// State the loop shares with scorer and reload callbacks. Lives behind
/// a shared_ptr captured by every callback, so completions arriving
/// after a connection (or the whole loop) is gone write into live
/// storage and are simply never consumed.
struct EventLoop::Shared {
  Shared() : wake_fd(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
    SPE_CHECK_GE(wake_fd, 0) << "eventfd failed";
  }
  ~Shared() { close(wake_fd); }

  void Post(std::uint64_t token) {
    {
      std::lock_guard<std::mutex> lock(mu);
      completions.push_back(token);
    }
    Wake();
  }

  void Wake() {
    const std::uint64_t one = 1;
    // The counter saturating (EAGAIN) still leaves the fd readable;
    // nothing to handle.
    (void)!write(wake_fd, &one, sizeof(one));
  }

  /// Feature vectors recycled through scorer callbacks; bounded so a
  /// burst does not pin memory forever.
  std::vector<double> GetFeatures() {
    std::lock_guard<std::mutex> lock(mu);
    if (features_pool.empty()) return {};
    std::vector<double> v = std::move(features_pool.back());
    features_pool.pop_back();
    v.clear();
    return v;
  }

  void PutFeatures(std::vector<double> v) {
    std::lock_guard<std::mutex> lock(mu);
    if (features_pool.size() < 4096) features_pool.push_back(std::move(v));
  }

  const int wake_fd;
  std::mutex mu;
  std::vector<std::uint64_t> completions;
  std::vector<std::vector<double>> features_pool;
  std::atomic<bool> drain_requested{false};
};

/// Per-connection state machine.
struct EventLoop::Conn {
  enum class Proto : unsigned char { kUnknown, kText, kBinary };

  int fd = -1;
  std::uint64_t token = 0;
  Proto proto = Proto::kUnknown;
  std::uint32_t armed = 0;  // epoll interest currently registered

  std::string in;           // unparsed request bytes
  std::size_t in_pos = 0;   // parse cursor into `in`
  std::string out;          // formatted responses not yet written
  std::size_t out_pos = 0;  // write cursor into `out`

  std::deque<std::shared_ptr<Pending>> pending;

  bool read_open = true;    // peer may still send (no EOF / SHUT_RD yet)
  bool blocked = false;     // a !reload is in flight: parsing paused
  bool close_after_flush = false;  // framing lost: answer, flush, close
  bool refusal = false;     // capacity-refusal pseudo-connection
  bool discard_line = false;       // text: swallowing an oversized line
  std::size_t skip_bytes = 0;      // binary: payload bytes left to discard
};

EventLoop::EventLoop(BatchScorer& scorer, EventLoopConfig config,
                     ReloadRequestFn reload_fn)
    : scorer_(scorer),
      config_(std::move(config)),
      reload_fn_(std::move(reload_fn)),
      shared_(std::make_shared<Shared>()) {
  metrics_collector_ =
      obs::MetricsRegistry::Global().AddCollector([this](std::string& out) {
        const auto counter = [&out](const char* name, std::uint64_t v) {
          out += "# TYPE ";
          out += name;
          out += " counter\n";
          out += name;
          out += ' ';
          out += std::to_string(v);
          out += '\n';
        };
        const EventLoopCounters& c = counters_;
        counter("spe_serve_loop_accepted_total",
                c.accepted.load(std::memory_order_relaxed));
        counter("spe_serve_loop_refused_total",
                c.refused.load(std::memory_order_relaxed));
        counter("spe_serve_loop_text_requests_total",
                c.text_requests.load(std::memory_order_relaxed));
        counter("spe_serve_loop_binary_requests_total",
                c.binary_requests.load(std::memory_order_relaxed));
        counter("spe_serve_loop_partial_writes_total",
                c.partial_writes.load(std::memory_order_relaxed));
        counter("spe_serve_loop_read_errors_total",
                c.read_errors.load(std::memory_order_relaxed));
        counter("spe_serve_loop_write_errors_total",
                c.write_errors.load(std::memory_order_relaxed));
        counter("spe_serve_loop_wakeups_total",
                c.wakeups.load(std::memory_order_relaxed));
        out += "# TYPE spe_serve_loop_connections gauge\n"
               "spe_serve_loop_connections ";
        out += std::to_string(c.connections.load(std::memory_order_relaxed));
        out += '\n';
      });
}

EventLoop::~EventLoop() {
  for (auto& [token, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

std::string EventLoop::Listen(const std::string& host, int port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return "bad bind address " + host;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, config_.listen_backlog) < 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return "";
}

void EventLoop::RequestDrain() {
  shared_->drain_requested.store(true, std::memory_order_release);
  shared_->Wake();
}

std::string EventLoop::GetBuffer() {
  if (buffer_pool_.empty()) {
    ++buffers_allocated_;
    return {};
  }
  ++buffers_reused_;
  std::string buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buf.clear();
  return buf;
}

void EventLoop::PutBuffer(std::string buf) {
  // Keep warm buffers, not monsters: a 1 MiB oversized line should not
  // pin its allocation for the rest of the process.
  if (buffer_pool_.size() < 1024 && buf.capacity() <= (1u << 20)) {
    buffer_pool_.push_back(std::move(buf));
  }
}

void EventLoop::Run() {
  SPE_CHECK_GE(listen_fd_, 0) << "Listen() before Run()";
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  SPE_CHECK_GE(epoll_fd_, 0) << "epoll_create1 failed";

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerToken;
  SPE_CHECK_EQ(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev), 0);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  SPE_CHECK_EQ(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, shared_->wake_fd, &ev), 0);

  epoll_event events[256];
  while (!(draining_ && conns_.empty())) {
    const int n = epoll_wait(epoll_fd_, events, 256, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      SPE_CHECK(false) << Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kListenerToken) {
        AcceptReady();
      } else if (token == kWakeToken) {
        DrainCompletions();
      } else {
        HandleConnEvent(token, events[i].events);
      }
    }
  }
}

void EventLoop::AcceptReady() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        return;
      }
      // EINVAL: a signal thread shut the listener down — the drain
      // request of the old blocking-accept design. Anything else
      // (EMFILE exhaustion aside) also stops the listener; draining is
      // the safe response either way.
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: shed by not accepting; the backlog holds.
        return;
      }
      BeginDrain();
      return;
    }
    if (draining_) {
      close(fd);
      continue;
    }
    const std::uint64_t token = next_token_++;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->token = token;
    conn->in = GetBuffer();
    conn->out = GetBuffer();
    if (config_.max_connections > 0 &&
        active_sessions_ >= config_.max_connections) {
      // At capacity: the refusal is a one-line pseudo-connection that
      // rides the same nonblocking write path as everything else — a
      // peer with a full receive buffer gets the whole line eventually
      // instead of whatever one unchecked write(2) happened to take.
      counters_.refused.fetch_add(1, std::memory_order_relaxed);
      conn->refusal = true;
      conn->read_open = false;
      conn->out.append(kCapacityRefusal, sizeof(kCapacityRefusal) - 1);
    } else {
      ++active_sessions_;
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    Conn& c = *conn;
    conns_.emplace(token, std::move(conn));
    epoll_event ev{};
    ev.data.u64 = token;
    ev.events = 0;
    SPE_CHECK_EQ(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev), 0);
    if (!TryFlush(c)) continue;  // refusal line usually fits the first write
    UpdateConn(c);
  }
}

void EventLoop::HandleConnEvent(std::uint64_t token, std::uint32_t events) {
  const auto it = conns_.find(token);
  if (it == conns_.end()) return;  // closed earlier in this batch
  Conn& c = *it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    // Let the read path observe the condition (recv reports the real
    // error, or EOF); a write-side hangup surfaces in TryFlush.
    if (!c.read_open) {
      if (!TryFlush(c)) return;
      CloseConn(token);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    if (!TryFlush(c)) return;  // conn closed on hard error
  }
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 && c.read_open) {
    HandleReadable(c);
    if (conns_.find(token) == conns_.end()) return;
  }
  PumpPending(c);
  if (conns_.find(token) == conns_.end()) return;
  UpdateConn(c);
}

void EventLoop::HandleReadable(Conn& c) {
  for (;;) {
    if (c.blocked || c.pending.size() >= config_.max_pending_per_conn ||
        c.out.size() - c.out_pos >= config_.max_outbuf_bytes) {
      return;  // backpressure: leave the rest in the kernel buffer
    }
    const std::size_t old = c.in.size();
    c.in.resize(old + config_.read_chunk_bytes);
    const ssize_t n = recv(c.fd, c.in.data() + old, config_.read_chunk_bytes, 0);
    if (n > 0) {
      c.in.resize(old + static_cast<std::size_t>(n));
      ParseInput(c);
      if (conns_.find(c.token) == conns_.end()) return;
      continue;
    }
    c.in.resize(old);
    if (n == 0) {
      // EOF. A final unterminated text line still counts as a request
      // (matches fgets semantics at stream end) — and so does an
      // oversized line cut short by EOF, which still earns its error
      // line. A partial binary frame has no id to answer; dropped.
      c.read_open = false;
      if (!draining_ && c.proto != Conn::Proto::kBinary &&
          (c.discard_line ||
           (c.in_pos < c.in.size() && c.in.back() != '\n'))) {
        c.in.push_back('\n');
        ParseInput(c);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    counters_.read_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConn(c.token);  // peer reset: nothing to answer
    return;
  }
}

void EventLoop::ParseInput(Conn& c) {
  if (c.proto == Conn::Proto::kUnknown && c.in_pos < c.in.size()) {
    c.proto = static_cast<unsigned char>(c.in[c.in_pos]) == wire::kMagic
                  ? Conn::Proto::kBinary
                  : Conn::Proto::kText;
  }
  if (c.proto == Conn::Proto::kBinary) {
    ParseBinary(c);
  } else {
    ParseText(c);
  }
  if (conns_.find(c.token) == conns_.end()) return;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (c.in_pos > 0 && (c.in_pos >= c.in.size() || c.in_pos > (1u << 16))) {
    c.in.erase(0, c.in_pos);
    c.in_pos = 0;
  }
}

void EventLoop::ParseText(Conn& c) {
  while (!c.blocked && !c.close_after_flush &&
         c.pending.size() < config_.max_pending_per_conn) {
    const std::size_t nl = c.in.find('\n', c.in_pos);
    if (c.discard_line) {
      // Swallowing an oversized line chunk by chunk, never buffering it.
      if (nl == std::string::npos) {
        c.in.clear();
        c.in_pos = 0;
        return;
      }
      c.in_pos = nl + 1;
      c.discard_line = false;
      auto pending = std::make_shared<Pending>();
      pending->kind = Pending::Kind::kImmediate;
      ServeRequest oversize;
      oversize.kind = RequestKind::kInvalid;
      pending->response =
          FormatErrorResponse(oversize,
                              "request line exceeds " +
                                  std::to_string(kMaxRequestLineBytes) +
                                  " bytes") +
          '\n';
      pending->ready.store(true, std::memory_order_release);
      c.pending.push_back(std::move(pending));
      continue;
    }
    if (nl == std::string::npos) {
      if (c.in.size() - c.in_pos > kMaxRequestLineBytes + 2) {
        c.discard_line = true;
        c.in.clear();
        c.in_pos = 0;
      }
      return;
    }
    std::string_view line(c.in.data() + c.in_pos, nl - c.in_pos);
    c.in_pos = nl + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.remove_suffix(1);
    }
    // A too-long line whose '\n' was already buffered (it can exceed
    // the no-newline check above by at most one read chunk) is refused
    // inside ParseRequestLine, which checks the cap before scanning and
    // answers the same "request line exceeds N bytes" error.
    EnqueueTextRequest(c, line);
  }
}

void EventLoop::EnqueueTextRequest(Conn& c, std::string_view line) {
  auto pending = std::make_shared<Pending>();
  pending->request = ParseRequestLine(line);
  ServeRequest& req = pending->request;
  switch (req.kind) {
    case RequestKind::kEmpty:
      return;  // never queued, no response
    case RequestKind::kStats:
      pending->kind = Pending::Kind::kStats;
      break;
    case RequestKind::kMetrics:
      pending->kind = Pending::Kind::kMetrics;
      break;
    case RequestKind::kReload:
      pending->kind = Pending::Kind::kReload;
      pending->reload_path = std::move(req.reload_path);
      c.blocked = true;  // parsing resumes once the OK/ERR is written
      break;
    case RequestKind::kInvalid:
      pending->kind = Pending::Kind::kImmediate;
      pending->response = FormatErrorResponse(req, req.error) + '\n';
      pending->ready.store(true, std::memory_order_release);
      break;
    case RequestKind::kScore: {
      counters_.text_requests.fetch_add(1, std::memory_order_relaxed);
      if (req.features.size() != scorer_.num_features()) {
        pending->kind = Pending::Kind::kImmediate;
        pending->response =
            FormatErrorResponse(
                req, "expected " + std::to_string(scorer_.num_features()) +
                         " features, got " +
                         std::to_string(req.features.size())) +
            '\n';
        pending->ready.store(true, std::memory_order_release);
        break;
      }
      pending->kind = Pending::Kind::kScore;
      const double deadline_ms = req.deadline_ms;
      c.pending.push_back(pending);
      SubmitScore(c, pending, std::move(req.features), deadline_ms);
      return;
    }
  }
  c.pending.push_back(std::move(pending));
}

void EventLoop::ParseBinary(Conn& c) {
  while (!c.blocked && !c.close_after_flush &&
         c.pending.size() < config_.max_pending_per_conn) {
    if (c.skip_bytes > 0) {
      const std::size_t avail = c.in.size() - c.in_pos;
      const std::size_t eat = avail < c.skip_bytes ? avail : c.skip_bytes;
      c.in_pos += eat;
      c.skip_bytes -= eat;
      if (c.skip_bytes > 0) return;  // need more bytes to discard
      continue;
    }
    if (c.in.size() - c.in_pos < wire::kHeaderBytes) return;
    const unsigned char* base =
        reinterpret_cast<const unsigned char*>(c.in.data()) + c.in_pos;
    const wire::FrameHeader header = wire::DecodeHeader(base);
    const std::string header_error = wire::ValidateRequestHeader(header);
    if (!header_error.empty()) {
      auto pending = std::make_shared<Pending>();
      pending->kind = Pending::Kind::kImmediate;
      pending->binary = true;
      wire::AppendErrorResponse(pending->response, 0, header_error);
      pending->ready.store(true, std::memory_order_release);
      c.pending.push_back(std::move(pending));
      if (wire::IsFramingLost(header_error)) {
        // The stream can no longer be framed: answer, flush, close.
        c.close_after_flush = true;
        c.read_open = false;
        c.in.clear();
        c.in_pos = 0;
        return;
      }
      // Recoverable refusal (oversized payload, unknown type, short
      // score frame): discard the declared payload in chunks and keep
      // the connection.
      c.in_pos += wire::kHeaderBytes;
      c.skip_bytes = header.payload_len;
      continue;
    }
    if (c.in.size() - c.in_pos < wire::kHeaderBytes + header.payload_len) {
      return;  // whole frame not buffered yet (payload <= 1 MiB cap)
    }
    const unsigned char* payload = base + wire::kHeaderBytes;
    c.in_pos += wire::kHeaderBytes + header.payload_len;
    auto pending = std::make_shared<Pending>();
    pending->binary = true;
    switch (static_cast<wire::FrameType>(header.type)) {
      case wire::FrameType::kScore: {
        counters_.binary_requests.fetch_add(1, std::memory_order_relaxed);
        wire::ScoreFrame frame;
        std::vector<double> features = shared_->GetFeatures();
        const std::string error =
            wire::DecodeScorePayload(header, payload, frame, features);
        pending->bin_id = frame.id;
        if (!error.empty()) {
          pending->kind = Pending::Kind::kImmediate;
          wire::AppendErrorResponse(pending->response, frame.id, error);
          pending->ready.store(true, std::memory_order_release);
          shared_->PutFeatures(std::move(features));
          break;
        }
        if (features.size() != scorer_.num_features()) {
          pending->kind = Pending::Kind::kImmediate;
          wire::AppendErrorResponse(
              pending->response, frame.id,
              "expected " + std::to_string(scorer_.num_features()) +
                  " features, got " + std::to_string(features.size()));
          pending->ready.store(true, std::memory_order_release);
          shared_->PutFeatures(std::move(features));
          break;
        }
        pending->kind = Pending::Kind::kScore;
        c.pending.push_back(pending);
        SubmitScore(c, pending, std::move(features), frame.deadline_ms);
        continue;
      }
      case wire::FrameType::kStats:
        pending->kind = Pending::Kind::kStats;
        break;
      case wire::FrameType::kMetrics:
        pending->kind = Pending::Kind::kMetrics;
        break;
      case wire::FrameType::kReload:
        pending->kind = Pending::Kind::kReload;
        pending->reload_path.assign(reinterpret_cast<const char*>(payload),
                                    header.payload_len);
        c.blocked = true;
        break;
      default:
        SPE_CHECK(false) << "validated header with unknown type";
    }
    c.pending.push_back(std::move(pending));
  }
}

void EventLoop::SubmitScore(Conn& c, const std::shared_ptr<Pending>& pending,
                            std::vector<double> features, double deadline_ms) {
  auto deadline = BatchScorer::kNoDeadline;
  if (deadline_ms >= 0 || config_.default_deadline_ms > 0) {
    const double ms =
        deadline_ms >= 0 ? deadline_ms : config_.default_deadline_ms;
    deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
  }
  // The callback runs on a scorer worker (or inline on this thread when
  // shed): it formats the response into the pending slot, hands the
  // feature buffer back to the pool, and pokes the loop. It must not
  // touch Conn — the connection may be gone by the time it fires.
  std::shared_ptr<Shared> shared = shared_;
  const std::uint64_t token = c.token;
  scorer_.SubmitCallback(
      std::move(features), deadline,
      [shared, pending, token](ScoreResult result, std::exception_ptr error,
                               std::vector<double> buffer) {
        shared->PutFeatures(std::move(buffer));
        if (error != nullptr) {
          std::string what = "unknown error";
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            what = e.what();
          } catch (...) {
          }
          if (pending->binary) {
            wire::AppendErrorResponse(pending->response, pending->bin_id,
                                      what);
          } else {
            pending->response =
                FormatErrorResponse(pending->request, what) + '\n';
          }
        } else if (pending->binary) {
          wire::AppendScoreResponse(pending->response, pending->bin_id,
                                    result.proba, result.degraded);
        } else {
          pending->response = FormatScoreResponse(pending->request,
                                                  result.proba,
                                                  result.degraded) +
                              '\n';
        }
        pending->ready.store(true, std::memory_order_release);
        shared->Post(token);
      });
}

void EventLoop::PumpPending(Conn& c) {
  for (;;) {
    bool waiting = false;  // head slot exists but its response is not ready
    while (!c.pending.empty()) {
      Pending& head = *c.pending.front();
      switch (head.kind) {
        case Pending::Kind::kImmediate:
        case Pending::Kind::kScore:
          waiting = !head.ready.load(std::memory_order_acquire);
          break;
        case Pending::Kind::kStats: {
          // Rendered only now — at the head, with every earlier
          // response already formatted into c.out — so the snapshot
          // reflects the same completed requests the old writer thread
          // saw when it popped the item.
          std::string text = ToJson(scorer_.stats().Snapshot());
          if (head.binary) {
            wire::AppendTextResponse(head.response, text);
          } else {
            head.response = std::move(text) + '\n';
          }
          head.kind = Pending::Kind::kImmediate;
          break;
        }
        case Pending::Kind::kMetrics: {
          std::string text = obs::MetricsRegistry::Global().RenderText();
          while (!text.empty() && text.back() == '\n') text.pop_back();
          if (head.binary) {
            wire::AppendTextResponse(head.response, text);
          } else {
            head.response = std::move(text) + '\n';
          }
          head.kind = Pending::Kind::kImmediate;
          break;
        }
        case Pending::Kind::kReload: {
          if (head.fired) {
            waiting = !head.ready.load(std::memory_order_acquire);
            break;
          }
          // The reload barrier: fire only when every response for a
          // request read before the !reload is on the wire. Pending
          // being the head covers "answered"; the empty output buffer
          // covers "written" — together, the old inflight==0 condition.
          if (c.out.size() != c.out_pos) {
            if (!TryFlush(c)) return;  // connection closed on write error
            if (c.out.size() != c.out_pos) {
              waiting = true;  // wait for EPOLLOUT
              break;
            }
          }
          head.fired = true;
          if (!reload_fn_) {
            if (head.binary) {
              wire::AppendTextResponse(head.response,
                                       "ERR reload is not available");
            } else {
              head.response = "ERR reload is not available\n";
            }
            head.ready.store(true, std::memory_order_release);
            break;
          }
          std::shared_ptr<Shared> shared = shared_;
          std::shared_ptr<Pending> slot = c.pending.front();
          const std::uint64_t token = c.token;
          reload_fn_(slot->reload_path,
                     [shared, slot, token](std::string response) {
                       if (slot->binary) {
                         wire::AppendTextResponse(slot->response, response);
                       } else {
                         slot->response = std::move(response) + '\n';
                       }
                       slot->ready.store(true, std::memory_order_release);
                       shared->Post(token);
                     });
          waiting = !head.ready.load(std::memory_order_acquire);
          break;
        }
      }
      if (waiting) break;
      c.out += c.pending.front()->response;
      const bool was_reload =
          c.pending.front()->kind == Pending::Kind::kReload;
      c.pending.pop_front();
      // Requests sent after a !reload parse (and score) only from here
      // on — against the post-swap model, or the old one if the swap
      // was refused; the resume step below picks them up.
      if (was_reload) c.blocked = false;
    }
    // Resume parsing input that was buffered while the pending queue
    // sat at its cap or a !reload blocked the parser. The kernel buffer
    // may already be drained (a pipelining client can put everything in
    // one burst), so no EPOLLIN is coming to do this for us — the slots
    // freed above are the only wakeup this input will ever get.
    if (waiting || c.blocked || c.close_after_flush ||
        c.in_pos >= c.in.size() ||
        c.pending.size() >= config_.max_pending_per_conn) {
      break;
    }
    const std::size_t queued = c.pending.size();
    ParseInput(c);
    if (conns_.find(c.token) == conns_.end()) return;
    if (c.pending.size() == queued) {
      // No request came out: the remainder is an incomplete line or
      // frame. Once the peer has half-closed it can never complete —
      // drop it (a partial binary frame has no id to answer) so the
      // connection does not idle forever on input that cannot progress.
      if (!c.read_open && c.in_pos < c.in.size()) {
        c.in.clear();
        c.in_pos = 0;
        c.skip_bytes = 0;
      }
      break;
    }
  }
  if (!c.pending.empty() || c.out.size() != c.out_pos) TryFlush(c);
}

bool EventLoop::TryFlush(Conn& c) {
  while (c.out_pos < c.out.size()) {
    const std::size_t want = c.out.size() - c.out_pos;
    const ssize_t n =
        send(c.fd, c.out.data() + c.out_pos, want, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < want) {
        counters_.partial_writes.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // Hard error (peer reset): undeliverable responses are dropped with
    // the connection, like the old writer thread's failed fputs.
    counters_.write_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConn(c.token);
    return false;
  }
  c.out.clear();
  c.out_pos = 0;
  return true;
}

void EventLoop::UpdateConn(Conn& c) {
  // Done when nothing can arrive and nothing is owed. Buffered input
  // the parser has not consumed yet is owed work too — PumpPending
  // resumes it when backpressure lifts and drops what can never
  // complete once the peer half-closes, so it cannot pin the
  // connection indefinitely.
  const bool has_output = c.out.size() != c.out_pos;
  const bool has_input = c.in_pos < c.in.size();
  if (!has_output && !has_input && c.pending.empty() &&
      (!c.read_open || c.close_after_flush || draining_)) {
    CloseConn(c.token);
    return;
  }
  std::uint32_t want = 0;
  if (c.read_open && !c.blocked && !draining_ &&
      c.pending.size() < config_.max_pending_per_conn &&
      c.out.size() - c.out_pos < config_.max_outbuf_bytes) {
    want |= EPOLLIN;
  }
  if (has_output) want |= EPOLLOUT;
  if (want != c.armed) {
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c.token;
    SPE_CHECK_EQ(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev), 0);
    c.armed = want;
  }
}

void EventLoop::CloseConn(std::uint64_t token) {
  const auto it = conns_.find(token);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  close(c.fd);
  if (!c.refusal) --active_sessions_;
  counters_.connections.fetch_sub(1, std::memory_order_relaxed);
  PutBuffer(std::move(c.in));
  PutBuffer(std::move(c.out));
  conns_.erase(it);
}

void EventLoop::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  close(listen_fd_);
  listen_fd_ = -1;
  // Half-close every connection (the old per-session SHUT_RD): no new
  // requests, every accepted one still answered. Partially read input
  // is dropped — scoring a truncated request would answer garbage.
  std::vector<std::uint64_t> tokens;
  tokens.reserve(conns_.size());
  for (const auto& [token, conn] : conns_) tokens.push_back(token);
  for (const std::uint64_t token : tokens) {
    const auto it = conns_.find(token);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    shutdown(c.fd, SHUT_RD);
    c.read_open = false;
    c.in.clear();
    c.in_pos = 0;
    c.discard_line = false;
    c.skip_bytes = 0;
    PumpPending(c);
    if (conns_.find(token) == conns_.end()) continue;
    UpdateConn(c);
  }
}

void EventLoop::DrainCompletions() {
  std::uint64_t drained = 0;
  (void)!read(shared_->wake_fd, &drained, sizeof(drained));
  counters_.wakeups.fetch_add(1, std::memory_order_relaxed);
  if (shared_->drain_requested.exchange(false, std::memory_order_acquire)) {
    BeginDrain();
  }
  std::vector<std::uint64_t> tokens;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    tokens.swap(shared_->completions);
  }
  for (const std::uint64_t token : tokens) {
    const auto it = conns_.find(token);
    if (it == conns_.end()) continue;  // connection died before its answer
    Conn& c = *it->second;
    PumpPending(c);
    if (conns_.find(token) == conns_.end()) continue;
    UpdateConn(c);
  }
}

}  // namespace spe::serve
