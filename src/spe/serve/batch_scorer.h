#ifndef SPE_SERVE_BATCH_SCORER_H_
#define SPE_SERVE_BATCH_SCORER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/mpmc_queue.h"
#include "spe/lifecycle/model_registry.h"
#include "spe/obs/metrics.h"
#include "spe/serve/server_stats.h"

namespace spe {

/// What a producer experiences when the request queue is full.
enum class OverflowPolicy {
  kBlock,  // Submit blocks until a worker frees queue space
  kShed,   // Submit returns immediately; the future holds ScorerOverloaded
};

struct BatchScorerConfig {
  /// Upper bound on rows per model dispatch. Larger batches amortize
  /// per-call overhead (virtual dispatch, ensemble loop setup) at the
  /// cost of tail latency for the first row of the batch.
  std::size_t max_batch_size = 256;
  /// How long a worker holding a partial batch waits for more rows
  /// before dispatching what it has. 0 dispatches immediately (lowest
  /// latency, smallest batches).
  std::size_t max_batch_delay_us = 200;
  /// Worker threads running the model. 0 means NumThreads().
  std::size_t num_workers = 0;
  /// Bound on queued (accepted but not yet dispatched) requests.
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Overload degradation (0 disables): once the backlog at dispatch
  /// time reaches `degrade_high_watermark`, batches are scored with only
  /// the first `degrade_prefix` members of the ensemble
  /// (PrefixVoter::PredictProbaPrefix) — a cheaper but still valid SPE
  /// hypothesis — until the backlog falls to `degrade_low_watermark`
  /// (hysteresis, so the mode does not flap around one threshold).
  /// Requires the model to implement PrefixVoter when enabled.
  std::size_t degrade_high_watermark = 0;
  std::size_t degrade_low_watermark = 0;
  /// Ensemble members used while degraded. Clamped to the ensemble size.
  std::size_t degrade_prefix = 1;
  /// Shadow scoring cadence: when the registry designates a shadow
  /// version, every `shadow_every`-th non-degraded batch is also scored
  /// by it and the predictions are diffed (spe_lifecycle_shadow_*
  /// metrics). The shadow result never reaches a client. 0 disables;
  /// 1 shadows every batch.
  std::size_t shadow_every = 8;
};

/// Thrown (via the returned future) when a request is shed under
/// OverflowPolicy::kShed or submitted after Shutdown.
class ScorerOverloaded : public std::runtime_error {
 public:
  explicit ScorerOverloaded(const char* what) : std::runtime_error(what) {}
};

/// Thrown (via the returned future) when a request's deadline expired
/// while it was still queued. The request was never scored. what() is
/// the wire-stable token clients match on.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("DEADLINE_EXCEEDED") {}
};

/// What a completed request resolves to: the probability plus whether it
/// was produced by a degraded (ensemble-prefix) dispatch, so transports
/// can mark the response.
struct ScoreResult {
  double proba = 0.0;
  bool degraded = false;
};

/// Online scoring engine: accepts single rows from any number of
/// threads, coalesces them into micro-batches, and dispatches each
/// batch to a fixed pool of workers that run the active model's
/// PredictProba. Because every classifier in this library computes
/// probabilities row-independently, the micro-batch boundaries are
/// invisible in the results: a row served here is bit-identical to the
/// same row scored in-process via PredictProba.
///
/// Model lifecycle: the scorer reads its model through a
/// lifecycle::ModelRegistry. Each worker snapshots the active version
/// once per batch (one lock-free atomic load), so a hot reload
/// (ModelRegistry::Activate) takes effect at the next batch boundary:
/// every batch is scored entirely by one version — a response is
/// bit-identical to that version scored standalone, never a
/// mid-ensemble blend — and no request is dropped or delayed by the
/// swap. When a shadow version is designated, a sampled fraction of
/// batches is re-scored by it and prediction diffs are exported; when
/// the active version carries a training hardness histogram (v3
/// bundles), live scores feed its drift detector.
///
/// Robustness contract: a request may carry a deadline — if it expires
/// while the request is still queued, the future fails fast with
/// DeadlineExceeded and the model never sees the row. Under sustained
/// overload (see BatchScorerConfig watermarks) batches are scored with
/// an ensemble prefix and their results are marked `degraded`.
///
/// Lifecycle: construct (workers start immediately), Submit/Score from
/// any thread, Shutdown (or destroy) to drain. Shutdown refuses new
/// work but completes every accepted request — no future is ever
/// abandoned.
class BatchScorer {
 public:
  /// Sentinel for "no deadline".
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Takes ownership of a *fitted* model: installs it as version 1 of a
  /// private registry and activates it. `num_features` is the width
  /// submitted rows must have (a Dataset schema is reconstructed per
  /// batch).
  BatchScorer(std::unique_ptr<Classifier> model, std::size_t num_features,
              BatchScorerConfig config = {});

  /// Serves whatever `registry` designates active (hot reload, shadow
  /// scoring and drift detection flow through the registry). The
  /// registry must already have an active version; its feature width
  /// becomes the scorer's schema. The registry must outlive the scorer.
  BatchScorer(std::shared_ptr<lifecycle::ModelRegistry> registry,
              BatchScorerConfig config = {});

  ~BatchScorer();

  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;

  /// Enqueues one row; the future resolves to {P(y=1 | x), degraded}.
  /// Under kBlock this blocks while the queue is full; under kShed it
  /// returns immediately with a ScorerOverloaded future when full. After
  /// Shutdown the future always holds ScorerOverloaded. A `deadline`
  /// other than kNoDeadline fails the future with DeadlineExceeded if it
  /// passes before the request is dispatched.
  std::future<ScoreResult> Submit(
      std::vector<double> features,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Completion signature for SubmitCallback. Exactly one of
  /// result/error is meaningful: `error` is null on success, else it
  /// holds what the future path would have thrown (ScorerOverloaded,
  /// DeadlineExceeded, or a model exception). `features` is the
  /// submitted vector handed back so the caller can pool it — its
  /// contents are unspecified, its capacity is intact.
  using ScoreCallback = std::function<void(
      ScoreResult result, std::exception_ptr error,
      std::vector<double> features)>;

  /// Future-free submission for event-loop transports: instead of
  /// parking a thread on a future, `done` is invoked exactly once when
  /// the request completes — on a worker thread normally, or inline on
  /// the submitting thread when the request is shed (queue full under
  /// kShed, or after Shutdown). Same queueing, batching, deadline and
  /// degradation semantics as Submit; the two paths differ only in how
  /// the result leaves the scorer. `done` must not block: it runs on
  /// the scoring workers, so a slow callback stalls batch dispatch.
  void SubmitCallback(std::vector<double> features,
                      std::chrono::steady_clock::time_point deadline,
                      ScoreCallback done);

  /// Convenience: Submit + wait, probability only. Propagates
  /// ScorerOverloaded / DeadlineExceeded.
  double Score(std::vector<double> features);

  /// Scores every row of `rows` through the batching engine and returns
  /// probabilities in row order. Always blocks for queue space (even
  /// under kShed — offline scoring must not drop rows), so the offline
  /// CLI path and the online path share one dispatch code path.
  std::vector<double> ScoreBatch(const DatasetView& rows);

  /// Refuses new submissions, waits for workers to drain every queued
  /// request, and joins them. Idempotent; called by the destructor.
  void Shutdown();

  /// True while the watermark controller has degradation engaged.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// The currently active model. The reference stays valid for the
  /// registry's lifetime (versions are never evicted), but a concurrent
  /// reload can make it stale — scoring paths snapshot the version
  /// instead of calling this.
  const Classifier& model() const { return registry_->active()->model(); }
  lifecycle::ModelRegistry& registry() { return *registry_; }
  std::size_t num_features() const { return num_features_; }
  const BatchScorerConfig& config() const { return config_; }
  const ServerStats& stats() const { return stats_; }

  /// "flat" or "reference": the inference kernel of the currently
  /// active version (resolved — and the flat program compiled — when
  /// the version was loaded). Exposed on the metrics page as
  /// spe_serve_kernel_flat and stamped into bench JSON.
  const char* kernel() const { return registry_->active()->kernel(); }

 private:
  struct Request {
    std::vector<double> features;
    /// Engaged on the future path only; the callback path skips the
    /// promise's shared-state allocation entirely.
    std::optional<std::promise<ScoreResult>> promise;
    ScoreCallback done;  // engaged on the callback path only
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline = kNoDeadline;
  };

  /// Resolves `r` through whichever channel it carries (promise or
  /// callback). `error` null means success.
  static void Complete(Request& r, ScoreResult result,
                       std::exception_ptr error);

  void WorkerLoop();
  void ShadowScore(const DatasetView& rows, std::span<const double> active_probs,
                   const lifecycle::ModelVersion& active);

  const std::shared_ptr<lifecycle::ModelRegistry> registry_;
  const std::size_t num_features_;
  const BatchScorerConfig config_;
  ServerStats stats_;
  BoundedQueue<Request> queue_;
  std::atomic<bool> degraded_{false};
  /// Dispatch counter driving the every-Nth shadow cadence; shared by
  /// all workers so the sampled fraction holds regardless of how
  /// batches spread across them.
  std::atomic<std::uint64_t> shadow_tick_{0};
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  obs::Counter& shadow_batches_total_;
  obs::Counter& shadow_rows_total_;
  obs::Counter& shadow_disagree_total_;
  obs::GeometricHistogram& shadow_absdiff_ppm_;

  /// Publishes this scorer's stats on the global metrics registry
  /// ("!stats" / --metrics-dump). Declared last so it unregisters
  /// before any member it reads is destroyed.
  obs::CollectorHandle metrics_collector_;
};

}  // namespace spe

#endif  // SPE_SERVE_BATCH_SCORER_H_
