#ifndef SPE_SERVE_BATCH_SCORER_H_
#define SPE_SERVE_BATCH_SCORER_H_

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/mpmc_queue.h"
#include "spe/serve/server_stats.h"

namespace spe {

/// What a producer experiences when the request queue is full.
enum class OverflowPolicy {
  kBlock,  // Submit blocks until a worker frees queue space
  kShed,   // Submit returns immediately; the future holds ScorerOverloaded
};

struct BatchScorerConfig {
  /// Upper bound on rows per model dispatch. Larger batches amortize
  /// per-call overhead (virtual dispatch, ensemble loop setup) at the
  /// cost of tail latency for the first row of the batch.
  std::size_t max_batch_size = 256;
  /// How long a worker holding a partial batch waits for more rows
  /// before dispatching what it has. 0 dispatches immediately (lowest
  /// latency, smallest batches).
  std::size_t max_batch_delay_us = 200;
  /// Worker threads running the model. 0 means NumThreads().
  std::size_t num_workers = 0;
  /// Bound on queued (accepted but not yet dispatched) requests.
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

/// Thrown (via the returned future) when a request is shed under
/// OverflowPolicy::kShed or submitted after Shutdown.
class ScorerOverloaded : public std::runtime_error {
 public:
  explicit ScorerOverloaded(const char* what) : std::runtime_error(what) {}
};

/// Online scoring engine: accepts single rows from any number of
/// threads, coalesces them into micro-batches, and dispatches each
/// batch to a fixed pool of workers that run the wrapped classifier's
/// PredictProba. Because every classifier in this library computes
/// probabilities row-independently, the micro-batch boundaries are
/// invisible in the results: a row served here is bit-identical to the
/// same row scored in-process via PredictProba.
///
/// Lifecycle: construct (workers start immediately), Submit/Score from
/// any thread, Shutdown (or destroy) to drain. Shutdown refuses new
/// work but completes every accepted request — no future is ever
/// abandoned.
class BatchScorer {
 public:
  /// Takes ownership of a *fitted* model. `num_features` is the width
  /// submitted rows must have (a Dataset schema is reconstructed per
  /// batch).
  BatchScorer(std::unique_ptr<Classifier> model, std::size_t num_features,
              BatchScorerConfig config = {});
  ~BatchScorer();

  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;

  /// Enqueues one row; the future resolves to P(y=1 | x). Under
  /// kBlock this blocks while the queue is full; under kShed it returns
  /// immediately with a ScorerOverloaded future when full. After
  /// Shutdown the future always holds ScorerOverloaded.
  std::future<double> Submit(std::vector<double> features);

  /// Convenience: Submit + wait. Propagates ScorerOverloaded.
  double Score(std::vector<double> features);

  /// Scores every row of `rows` through the batching engine and returns
  /// probabilities in row order. Always blocks for queue space (even
  /// under kShed — offline scoring must not drop rows), so the offline
  /// CLI path and the online path share one dispatch code path.
  std::vector<double> ScoreBatch(const Dataset& rows);

  /// Refuses new submissions, waits for workers to drain every queued
  /// request, and joins them. Idempotent; called by the destructor.
  void Shutdown();

  const Classifier& model() const { return *model_; }
  std::size_t num_features() const { return num_features_; }
  const BatchScorerConfig& config() const { return config_; }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Request {
    std::vector<double> features;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const std::unique_ptr<Classifier> model_;
  const std::size_t num_features_;
  const BatchScorerConfig config_;
  ServerStats stats_;
  BoundedQueue<Request> queue_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

}  // namespace spe

#endif  // SPE_SERVE_BATCH_SCORER_H_
