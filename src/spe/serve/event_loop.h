#ifndef SPE_SERVE_EVENT_LOOP_H_
#define SPE_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "spe/obs/metrics.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/line_protocol.h"

namespace spe::serve {

/// Tuning for the TCP reactor. The defaults match the retired
/// thread-per-connection server so a config-free swap changes nothing
/// observable.
struct EventLoopConfig {
  /// Concurrent connections; one past the bound is answered with the
  /// capacity error line and closed. 0 = unlimited.
  std::size_t max_connections = 256;
  /// Deadline inherited by requests that do not carry one (<= 0: none).
  double default_deadline_ms = 0.0;
  /// Per-connection bound on responses accepted but not yet written;
  /// at the bound the connection stops being read (TCP backpressure)
  /// until responses drain. Same constant the writer-thread design
  /// bounded its response deque with.
  std::size_t max_pending_per_conn = 16384;
  /// Bytes per read(2) into a connection's input buffer.
  std::size_t read_chunk_bytes = 64 * 1024;
  /// Output buffer size past which a connection stops being read until
  /// the peer drains it (a client that writes but never reads cannot
  /// grow server memory without limit).
  std::size_t max_outbuf_bytes = 4 * 1024 * 1024;
  int listen_backlog = 256;
};

/// How the loop asks for a model reload: `done` must be invoked exactly
/// once, from any thread, with the protocol response line ("OK ..." /
/// "ERR ..."). The loop never blocks on the reload.
using ReloadRequestFn =
    std::function<void(std::string path, std::function<void(std::string)> done)>;

/// Aggregate loop counters, readable after Run() returns (and exported
/// live as spe_serve_loop_* metrics while it runs).
struct EventLoopCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> text_requests{0};
  std::atomic<std::uint64_t> binary_requests{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> read_errors{0};   // connections dropped mid-read
  std::atomic<std::uint64_t> write_errors{0};  // connections dropped mid-write
  std::atomic<std::uint64_t> wakeups{0};       // completion eventfd pokes
  std::atomic<std::uint64_t> connections{0};   // currently open (gauge)
};

/// Single-threaded epoll reactor serving the scoring protocols over
/// TCP. One thread owns every socket: it accepts, sniffs the protocol
/// (first byte 0xA6 selects the binary frame format of spe/serve/wire.h,
/// anything else the newline text protocol), parses requests straight
/// out of per-connection input buffers, and submits rows to the shared
/// BatchScorer through its callback path. Scoring workers format the
/// response into the request's pending slot and poke the loop through
/// an eventfd; the loop writes responses strictly in request order per
/// connection, exactly like the retired writer-thread design.
///
/// Memory is pooled, not per-request: input/output byte buffers are
/// recycled across connections, and each scored row's feature vector
/// round-trips through the scorer callback back into a free list, so a
/// steady-state connection allocates nothing on the hot path.
///
/// Ordering and lifecycle semantics are inherited bit-for-bit from the
/// thread-per-connection server:
///   - responses per connection come back in request order;
///   - STATS / !stats snapshots are rendered only after every earlier
///     response on the connection has been formatted (appended to its
///     output buffer) — observably the snapshot the old server rendered
///     after writing them, since those requests have completed either
///     way; the write to the wire itself may still be pending;
///   - !reload fires only after every request read before it has been
///     answered *and written* (the old inflight==0 barrier), parsing
///     resumes when the reload's OK/ERR is on the wire;
///   - drain (RequestDrain(), or shutdown(2) of the listen fd by a
///     signal thread) stops accepting, half-closes every connection,
///     drops partially read requests, answers everything accepted, and
///     Run() returns.
///
/// Blocking caveat: under OverflowPolicy::kBlock a full scorer queue
/// blocks the loop inside SubmitCallback — all connections stall until
/// workers free queue space. That is the same global backpressure the
/// per-connection readers produced collectively, concentrated in one
/// thread; kShed keeps the loop wait-free.
class EventLoop {
 public:
  /// `reload_fn` may be empty, in which case !reload answers an error.
  /// The scorer must outlive the loop; the loop must be destroyed
  /// before the scorer shuts down *or* after — both are safe, because
  /// in-flight completions land in a shared mailbox that outlives the
  /// loop itself.
  EventLoop(BatchScorer& scorer, EventLoopConfig config,
            ReloadRequestFn reload_fn);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds and listens. Returns "" on success, else a description.
  /// Port 0 binds an ephemeral port; port() reports the real one.
  std::string Listen(const std::string& host, int port);

  int port() const { return port_; }

  /// The listening socket, for signal handlers that drain the server by
  /// shutdown(2) of the listener (the loop sees the listener error and
  /// begins its drain). -1 before Listen.
  int listen_fd() const { return listen_fd_; }

  /// Serves until drained: every accepted request answered, every
  /// connection closed. Call from exactly one thread.
  void Run();

  /// Thread-safe: asks the loop to begin the drain sequence.
  void RequestDrain();

  const EventLoopCounters& counters() const { return counters_; }

 private:
  struct Conn;
  struct Pending;
  struct Shared;

  // -- loop-thread helpers (definitions in event_loop.cc) --
  void AcceptReady();
  void HandleConnEvent(std::uint64_t token, std::uint32_t events);
  void HandleReadable(Conn& c);
  void ParseInput(Conn& c);
  void ParseText(Conn& c);
  void ParseBinary(Conn& c);
  void EnqueueTextRequest(Conn& c, std::string_view line);
  void SubmitScore(Conn& c, const std::shared_ptr<Pending>& pending,
                   std::vector<double> features, double deadline_ms);
  void PumpPending(Conn& c);
  bool TryFlush(Conn& c);
  void UpdateConn(Conn& c);
  void CloseConn(std::uint64_t token);
  void BeginDrain();
  void DrainCompletions();

  BatchScorer& scorer_;
  const EventLoopConfig config_;
  const ReloadRequestFn reload_fn_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int port_ = 0;
  bool draining_ = false;

  std::uint64_t next_token_ = 2;  // 0 = listener, 1 = completion eventfd
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::size_t active_sessions_ = 0;  // conns_ minus capacity refusals

  /// Completion mailbox + feature-vector pool, shared with scorer and
  /// reload callbacks. shared_ptr so a callback that outlives the loop
  /// (connection died first, or the loop already returned) posts into
  /// still-valid storage instead of freed memory.
  std::shared_ptr<Shared> shared_;

  /// Byte-buffer free list for connection input/output buffers
  /// (loop-thread only; capacity-preserving).
  std::vector<std::string> buffer_pool_;
  std::uint64_t buffers_reused_ = 0;
  std::uint64_t buffers_allocated_ = 0;
  std::string GetBuffer();
  void PutBuffer(std::string buf);

  EventLoopCounters counters_;
  obs::CollectorHandle metrics_collector_;
};

}  // namespace spe::serve

#endif  // SPE_SERVE_EVENT_LOOP_H_
