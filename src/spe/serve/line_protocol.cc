#include "spe/serve/line_protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "spe/common/parse.h"

namespace spe {
namespace {

void SkipSpace(std::string_view s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool ParseNumber(std::string_view s, std::size_t& i, double* out) {
  // ParseDoublePrefix parses in place (no NUL-terminated copy) and is
  // locale-independent — strtod here would read "0,5" as 0.5 under a
  // decimal-comma locale and desynchronize the whole CSV line.
  // Non-finite values still parse; the callers reject them with the
  // dedicated taxonomy message.
  return ParseDoublePrefix(s, i, out);
}

ServeRequest Invalid(std::string message, bool json) {
  ServeRequest r;
  r.kind = RequestKind::kInvalid;
  r.json = json;
  r.error = std::move(message);
  return r;
}

// Consumes a JSON string literal starting at s[i] == '"', returning the
// verbatim token (quotes included). Handles backslash escapes only well
// enough to find the closing quote.
bool ParseStringToken(std::string_view s, std::size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  const std::size_t start = i++;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
    } else if (s[i] == '"') {
      ++i;
      *out = std::string(s.substr(start, i - start));
      return true;
    } else {
      ++i;
    }
  }
  return false;
}

ServeRequest ParseJson(std::string_view s) {
  ServeRequest r;
  r.kind = RequestKind::kScore;
  r.json = true;
  std::size_t i = 0;
  SkipSpace(s, i);
  if (i >= s.size() || s[i] != '{') return Invalid("expected '{'", true);
  ++i;
  bool have_features = false;
  while (true) {
    SkipSpace(s, i);
    if (i < s.size() && s[i] == '}') break;
    std::string key;
    if (!ParseStringToken(s, i, &key)) {
      return Invalid("expected object key", true);
    }
    SkipSpace(s, i);
    if (i >= s.size() || s[i] != ':') return Invalid("expected ':'", true);
    ++i;
    SkipSpace(s, i);
    if (key == "\"features\"") {
      if (i >= s.size() || s[i] != '[') {
        return Invalid("\"features\" must be an array", true);
      }
      ++i;
      SkipSpace(s, i);
      if (i < s.size() && s[i] == ']') {
        ++i;
      } else {
        while (true) {
          double v = 0.0;
          if (!ParseNumber(s, i, &v)) {
            return Invalid("bad number in \"features\"", true);
          }
          if (!std::isfinite(v)) {
            return Invalid("non-finite value in \"features\"", true);
          }
          r.features.push_back(v);
          SkipSpace(s, i);
          if (i < s.size() && s[i] == ',') {
            ++i;
            SkipSpace(s, i);
            continue;
          }
          if (i < s.size() && s[i] == ']') {
            ++i;
            break;
          }
          return Invalid("expected ',' or ']' in \"features\"", true);
        }
      }
      have_features = true;
    } else if (key == "\"deadline_ms\"") {
      double v = 0.0;
      if (!ParseNumber(s, i, &v) || !std::isfinite(v) || v < 0.0) {
        return Invalid("\"deadline_ms\" must be a non-negative number", true);
      }
      r.deadline_ms = v;
    } else {
      // Any other key (notably "id"): accept a string or number scalar
      // and, for "id", remember the verbatim token.
      std::string token;
      if (i < s.size() && s[i] == '"') {
        if (!ParseStringToken(s, i, &token)) {
          return Invalid("unterminated string", true);
        }
      } else {
        double v = 0.0;
        const std::size_t start = i;
        if (!ParseNumber(s, i, &v)) {
          return Invalid("unsupported value for key " + key, true);
        }
        token = std::string(s.substr(start, i - start));
      }
      if (key == "\"id\"") {
        if (token.size() > kMaxIdBytes) {
          return Invalid("\"id\" longer than " +
                             std::to_string(kMaxIdBytes) + " bytes",
                         true);
        }
        r.id = std::move(token);
      }
    }
    SkipSpace(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') break;
    return Invalid("expected ',' or '}'", true);
  }
  if (!have_features) return Invalid("missing \"features\"", true);
  return r;
}

ServeRequest ParseCsv(std::string_view s) {
  ServeRequest r;
  r.kind = RequestKind::kScore;
  r.json = false;
  std::size_t i = 0;
  while (true) {
    SkipSpace(s, i);
    double v = 0.0;
    if (!ParseNumber(s, i, &v)) {
      return Invalid("bad number at column " +
                         std::to_string(r.features.size() + 1),
                     false);
    }
    if (!std::isfinite(v)) {
      return Invalid("non-finite value at column " +
                         std::to_string(r.features.size() + 1),
                     false);
    }
    r.features.push_back(v);
    SkipSpace(s, i);
    if (i >= s.size()) break;
    if (s[i] != ',') return Invalid("expected ','", false);
    ++i;
  }
  return r;
}

}  // namespace

ServeRequest ParseRequestLine(std::string_view line) {
  if (line.size() > kMaxRequestLineBytes) {
    // Shape unknown (we refuse to scan a hostile line); answer in CSV
    // shape, the protocol's default.
    return Invalid("request line exceeds " +
                       std::to_string(kMaxRequestLineBytes) + " bytes",
                   false);
  }
  std::size_t i = 0;
  SkipSpace(line, i);
  if (i >= line.size()) {
    ServeRequest r;
    r.kind = RequestKind::kEmpty;
    return r;
  }
  if (line.substr(i) == "STATS") {
    ServeRequest r;
    r.kind = RequestKind::kStats;
    return r;
  }
  if (line.substr(i) == "!stats") {
    ServeRequest r;
    r.kind = RequestKind::kMetrics;
    return r;
  }
  if (line.substr(i) == "!reload" || line.substr(i, 8) == "!reload ") {
    ServeRequest r;
    r.kind = RequestKind::kReload;
    std::size_t p = i + 7;
    SkipSpace(line, p);
    std::size_t end = line.size();
    while (end > p &&
           std::isspace(static_cast<unsigned char>(line[end - 1]))) {
      --end;
    }
    r.reload_path = std::string(line.substr(p, end - p));
    return r;
  }
  return line[i] == '{' ? ParseJson(line.substr(i)) : ParseCsv(line.substr(i));
}

std::string FormatScoreResponse(const ServeRequest& request, double proba,
                                bool degraded) {
  char num[40];
  std::snprintf(num, sizeof(num), "%.17g", proba);
  if (!request.json) return num;
  std::string out = "{";
  if (!request.id.empty()) {
    out += "\"id\":";
    out += request.id;
    out += ',';
  }
  out += "\"proba\":";
  out += num;
  if (degraded) out += ",\"degraded\":true";
  out += '}';
  return out;
}

std::string FormatErrorResponse(const ServeRequest& request,
                                std::string_view message) {
  if (!request.json) return "ERR " + std::string(message);
  std::string out = "{";
  if (!request.id.empty()) {
    out += "\"id\":";
    out += request.id;
    out += ',';
  }
  out += "\"error\":\"";
  // The messages this server produces contain no quotes or backslashes,
  // but escape defensively so a hostile id echoed in `message` cannot
  // break the JSON framing.
  for (char c : message) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"}";
  return out;
}

}  // namespace spe
