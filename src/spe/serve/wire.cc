#include "spe/serve/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace spe::wire {
namespace {

static_assert(sizeof(double) == 8 && sizeof(float) == 4,
              "wire format assumes IEEE-754 f64/f32");

constexpr bool kLittle = std::endian::native == std::endian::little;

void AppendU32(std::string& out, std::uint32_t v) {
  unsigned char b[4];
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
  out.append(reinterpret_cast<const char*>(b), 4);
}

void AppendU64(std::string& out, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.append(reinterpret_cast<const char*>(b), 8);
}

void AppendF64(std::string& out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t ReadU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t ReadU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

double ReadF64(const unsigned char* p) {
  return std::bit_cast<double>(ReadU64(p));
}

float ReadF32(const unsigned char* p) {
  return std::bit_cast<float>(ReadU32(p));
}

}  // namespace

FrameHeader DecodeHeader(const unsigned char* bytes) {
  FrameHeader h;
  h.magic = bytes[0];
  h.version = bytes[1];
  h.flags = bytes[2];
  h.type = bytes[3];
  h.payload_len = ReadU32(bytes + 4);
  return h;
}

std::string ValidateRequestHeader(const FrameHeader& h) {
  if (h.magic != kMagic) return "bad frame magic";
  if (h.version != kVersion) {
    return "unsupported frame version " + std::to_string(h.version);
  }
  if (h.payload_len > kMaxPayloadBytes) {
    return "frame payload exceeds " + std::to_string(kMaxPayloadBytes) +
           " bytes";
  }
  switch (static_cast<FrameType>(h.type)) {
    case FrameType::kScore: {
      std::size_t floor = 8;  // id
      if (h.flags & kFlagDeadline) floor += 8;
      if (h.payload_len < floor) return "score frame payload too short";
      return "";
    }
    case FrameType::kStats:
    case FrameType::kMetrics:
    case FrameType::kReload:
      return "";
    default:
      return "unknown frame type " + std::to_string(h.type);
  }
}

bool IsFramingLost(std::string_view error) {
  return error.rfind("bad frame magic", 0) == 0 ||
         error.rfind("unsupported frame version", 0) == 0;
}

std::string DecodeScorePayload(const FrameHeader& h,
                               const unsigned char* payload, ScoreFrame& out,
                               std::vector<double>& features) {
  const unsigned char* p = payload;
  std::size_t remaining = h.payload_len;
  out.id = ReadU64(p);
  p += 8;
  remaining -= 8;
  out.deadline_ms = -1.0;
  if (h.flags & kFlagDeadline) {
    const double d = ReadF64(p);
    p += 8;
    remaining -= 8;
    if (!std::isfinite(d) || d < 0.0) {
      return "\"deadline_ms\" must be a non-negative number";
    }
    out.deadline_ms = d;
  }
  const std::size_t elem = (h.flags & kFlagF32) ? 4 : 8;
  if (remaining % elem != 0) {
    return "feature payload is not a whole number of " +
           std::to_string(elem * 8) + "-bit values";
  }
  const std::size_t count = remaining / elem;
  features.resize(count);
  if (h.flags & kFlagF32) {
    for (std::size_t i = 0; i < count; ++i) {
      features[i] = static_cast<double>(ReadF32(p + 4 * i));
    }
  } else if constexpr (kLittle) {
    // The zero-parse hot path: wire layout == scoring layout.
    std::memcpy(features.data(), p, remaining);
  } else {
    for (std::size_t i = 0; i < count; ++i) features[i] = ReadF64(p + 8 * i);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(features[i])) {
      return "non-finite value at column " + std::to_string(i + 1);
    }
  }
  return "";
}

void AppendHeader(std::string& out, FrameType type, unsigned char flags,
                  std::uint32_t payload_len) {
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(flags));
  out.push_back(static_cast<char>(type));
  AppendU32(out, payload_len);
}

void AppendScoreRequest(std::string& out, std::uint64_t id,
                        const double* features, std::size_t count, bool f32,
                        double deadline_ms) {
  unsigned char flags = 0;
  std::size_t len = 8 + count * (f32 ? 4 : 8);
  if (f32) flags |= kFlagF32;
  if (deadline_ms >= 0.0) {
    flags |= kFlagDeadline;
    len += 8;
  }
  AppendHeader(out, FrameType::kScore, flags,
               static_cast<std::uint32_t>(len));
  AppendU64(out, id);
  if (deadline_ms >= 0.0) AppendF64(out, deadline_ms);
  if (f32) {
    for (std::size_t i = 0; i < count; ++i) {
      AppendU32(out,
                std::bit_cast<std::uint32_t>(static_cast<float>(features[i])));
    }
  } else if constexpr (kLittle) {
    out.append(reinterpret_cast<const char*>(features), count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) AppendF64(out, features[i]);
  }
}

void AppendControlRequest(std::string& out, FrameType type,
                          std::string_view payload) {
  AppendHeader(out, type, 0, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

void AppendScoreResponse(std::string& out, std::uint64_t id, double proba,
                         bool degraded) {
  AppendHeader(out, FrameType::kScoreOk, degraded ? kFlagDegraded : 0, 16);
  AppendU64(out, id);
  AppendF64(out, proba);
}

void AppendErrorResponse(std::string& out, std::uint64_t id,
                         std::string_view message) {
  // A message that would blow the frame cap is truncated, not refused:
  // the error is the payload, and the client needs to see it.
  if (message.size() > kMaxPayloadBytes - 8) {
    message = message.substr(0, kMaxPayloadBytes - 8);
  }
  AppendHeader(out, FrameType::kError, 0,
               static_cast<std::uint32_t>(8 + message.size()));
  AppendU64(out, id);
  out.append(message);
}

void AppendTextResponse(std::string& out, std::string_view text) {
  if (text.size() > kMaxPayloadBytes) text = text.substr(0, kMaxPayloadBytes);
  AppendHeader(out, FrameType::kText, 0,
               static_cast<std::uint32_t>(text.size()));
  out.append(text);
}

std::string DecodeResponse(const FrameHeader& h, const unsigned char* payload,
                           DecodedResponse& out) {
  out.degraded = (h.flags & kFlagDegraded) != 0;
  out.type = static_cast<FrameType>(h.type);
  switch (out.type) {
    case FrameType::kScoreOk:
      if (h.payload_len != 16) return "malformed score response";
      out.id = ReadU64(payload);
      out.proba = ReadF64(payload + 8);
      return "";
    case FrameType::kError:
      if (h.payload_len < 8) return "malformed error response";
      out.id = ReadU64(payload);
      out.text.assign(reinterpret_cast<const char*>(payload) + 8,
                      h.payload_len - 8);
      return "";
    case FrameType::kText:
      out.id = 0;
      out.text.assign(reinterpret_cast<const char*>(payload), h.payload_len);
      return "";
    default:
      return "unknown response frame type " + std::to_string(h.type);
  }
}

}  // namespace spe::wire
