#ifndef SPE_SERVE_LINE_PROTOCOL_H_
#define SPE_SERVE_LINE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <vector>

namespace spe {

/// Newline-delimited scoring protocol shared by the TCP and stdio
/// transports of spe_serve. One request per line, one response line per
/// request, responses in request order. Two self-describing request
/// shapes:
///
///   CSV:  `0.5,1.25,-3`                 -> `0.08731...`
///   JSON: `{"id":17,"features":[0.5]}`  -> `{"id":17,"proba":0.08731...}`
///
/// A line whose first non-space byte is '{' is JSON; anything else is
/// CSV. The literal line `STATS` requests a stats snapshot. Errors are
/// reported in the shape of the request: `ERR <msg>` for CSV,
/// `{"error":"<msg>"}` for JSON — the connection stays open either way.
/// Probabilities are printed with 17 significant digits so the decimal
/// text round-trips to the exact double the model produced.

enum class RequestKind {
  kScore,    // features parsed, ready to submit
  kStats,    // STATS command
  kEmpty,    // blank line — ignore, no response
  kInvalid,  // malformed — respond with `error`
};

struct ServeRequest {
  RequestKind kind = RequestKind::kInvalid;
  bool json = false;
  /// Verbatim "id" token from a JSON request (including quotes for
  /// string ids), echoed back in the response. Empty when absent.
  std::string id;
  std::vector<double> features;
  std::string error;  // human-readable reason when kind == kInvalid
};

/// Parses one request line (no trailing newline). Never throws; a
/// malformed line yields kInvalid with `error` set.
ServeRequest ParseRequestLine(std::string_view line);

/// Response line (no trailing newline) for a scored request.
std::string FormatScoreResponse(const ServeRequest& request, double proba);

/// Error line (no trailing newline) in the shape of the request.
std::string FormatErrorResponse(const ServeRequest& request,
                                std::string_view message);

}  // namespace spe

#endif  // SPE_SERVE_LINE_PROTOCOL_H_
