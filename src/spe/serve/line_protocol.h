#ifndef SPE_SERVE_LINE_PROTOCOL_H_
#define SPE_SERVE_LINE_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace spe {

/// Newline-delimited scoring protocol shared by the TCP and stdio
/// transports of spe_serve. One request per line, one response line per
/// request, responses in request order. Two self-describing request
/// shapes:
///
///   CSV:  `0.5,1.25,-3`                 -> `0.08731...`
///   JSON: `{"id":17,"features":[0.5]}`  -> `{"id":17,"proba":0.08731...}`
///
/// A line whose first non-space byte is '{' is JSON; anything else is
/// CSV. The literal line `STATS` requests a stats snapshot; the literal
/// line `!stats` requests the full metrics exposition (multi-line,
/// Prometheus text format, terminated by `# EOF`); `!reload [PATH]`
/// asks the server to hot-swap its model to the artifact at PATH (or
/// re-read the startup artifact when PATH is omitted) — answered with
/// one `OK ...` or `ERR ...` line once the swap has happened, in
/// request order like every other response. Errors are
/// reported in the shape of the request: `ERR <msg>` for CSV,
/// `{"error":"<msg>"}` for JSON — the connection stays open either way.
/// Probabilities are printed with 17 significant digits so the decimal
/// text round-trips to the exact double the model produced.
///
/// Hardening: feature values must be finite (NaN/Inf are rejected — a
/// non-finite feature scores to garbage silently), ids longer than
/// kMaxIdBytes and lines longer than kMaxRequestLineBytes are rejected,
/// and a JSON request may carry `"deadline_ms": D` — the server fails
/// the request with DEADLINE_EXCEEDED instead of scoring it if it is
/// still queued D milliseconds after parsing. Responses produced by a
/// degraded (ensemble-prefix) dispatch carry `"degraded":true`.

/// Hard cap on one request line. Longer lines are answered with an
/// error and discarded without being buffered whole.
inline constexpr std::size_t kMaxRequestLineBytes = 1 << 20;  // 1 MiB

/// Cap on the verbatim JSON "id" token echoed back in responses.
inline constexpr std::size_t kMaxIdBytes = 256;

enum class RequestKind {
  kScore,    // features parsed, ready to submit
  kStats,    // STATS command — one-line JSON snapshot
  kMetrics,  // !stats command — multi-line metrics exposition
  kReload,   // !reload [PATH] — hot-swap the served model (spe_serve)
  kEmpty,    // blank line — ignore, no response
  kInvalid,  // malformed — respond with `error`
};

struct ServeRequest {
  RequestKind kind = RequestKind::kInvalid;
  bool json = false;
  /// Verbatim "id" token from a JSON request (including quotes for
  /// string ids), echoed back in the response. Empty when absent.
  std::string id;
  std::vector<double> features;
  /// Relative deadline in milliseconds from the JSON "deadline_ms" key;
  /// negative when the request did not set one (the server default, if
  /// any, applies). 0 is valid and means "already due" — useful for
  /// probing the deadline path deterministically.
  double deadline_ms = -1.0;
  /// Artifact path from a `!reload PATH` command; empty for a bare
  /// `!reload`, which re-reads the artifact the server was started on.
  std::string reload_path;
  std::string error;  // human-readable reason when kind == kInvalid
};

/// Parses one request line (no trailing newline). Never throws; a
/// malformed line yields kInvalid with `error` set.
ServeRequest ParseRequestLine(std::string_view line);

/// Response line (no trailing newline) for a scored request. Degraded
/// results are marked with `"degraded":true` in JSON responses; CSV
/// responses stay a bare number (degradation is visible via STATS).
std::string FormatScoreResponse(const ServeRequest& request, double proba,
                                bool degraded = false);

/// Error line (no trailing newline) in the shape of the request.
std::string FormatErrorResponse(const ServeRequest& request,
                                std::string_view message);

}  // namespace spe

#endif  // SPE_SERVE_LINE_PROTOCOL_H_
