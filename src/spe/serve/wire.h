#ifndef SPE_SERVE_WIRE_H_
#define SPE_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spe::wire {

/// Length-prefixed binary scoring protocol, negotiated per connection
/// alongside the legacy newline text protocol by sniffing the first
/// byte the client sends: kMagic (0xA6, not printable ASCII — no text
/// request can start with it) selects binary framing for the rest of
/// the connection, anything else selects the line protocol.
///
/// Every frame is an 8-byte header followed by `payload_len` bytes:
///
///   offset  size  field
///   0       1     magic    = 0xA6
///   1       1     version  = 1
///   2       1     flags    (Flags bitmask)
///   3       1     type     (FrameType)
///   4       4     payload_len, u32 little-endian
///
/// All multi-byte integers and floats are little-endian (IEEE-754 for
/// floats). A score request payload is
///
///   u64 id | [f64 deadline_ms, iff kFlagDeadline] | features...
///
/// where features are consecutive f64 (or f32 under kFlagF32) values —
/// the feature count is implied by the remaining payload length, which
/// must land exactly on the model's width. On little-endian hosts the
/// f64 layout IS the scoring layout, so the hot path is one memcpy:
/// no tokenizing, no number parsing, no per-request allocation (the
/// destination vector is pooled by the event loop).
///
/// Responses come back in request order, exactly like the line
/// protocol. A scored row answers kScoreOk (u64 id + f64 proba,
/// kFlagDegraded set when an overloaded server answered with an
/// ensemble prefix); a refused row answers kError (u64 id + UTF-8
/// message, same error taxonomy as the line protocol); the control
/// frames kStats/kMetrics/kReload answer kText carrying the exact text
/// the line protocol would have written (minus the trailing newline —
/// the frame is the delimiter).
///
/// The f32 caveat: kFlagF32 halves request bandwidth, but features are
/// widened to f64 before scoring, so a score is bit-identical to
/// scoring the *rounded* features — not to the f64 originals. Clients
/// that need bit-identity with offline scoring must send f64.
///
/// Oversized frames (payload_len > kMaxPayloadBytes) are refused with
/// kError and the payload is discarded in chunks without ever being
/// buffered, mirroring the text protocol's overlong-line handling; the
/// connection stays open. A bad magic or version mid-stream is
/// unrecoverable (framing is lost), so the server answers kError and
/// closes after flushing.

inline constexpr unsigned char kMagic = 0xA6;
inline constexpr unsigned char kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// Same bound as the text protocol's line cap: one request (or one
/// rendered metrics exposition) must fit.
inline constexpr std::size_t kMaxPayloadBytes = 1 << 20;

enum Flags : unsigned char {
  kFlagF32 = 0x01,       // request features are f32 (default f64)
  kFlagDeadline = 0x02,  // request carries f64 deadline_ms after the id
  kFlagDegraded = 0x04,  // response was scored by a degraded prefix
};

enum class FrameType : unsigned char {
  // client -> server
  kScore = 0x01,    // u64 id [f64 deadline_ms] features
  kStats = 0x02,    // empty payload; answers kText (JSON snapshot)
  kMetrics = 0x03,  // empty payload; answers kText (exposition)
  kReload = 0x04,   // payload = artifact path; answers kText (OK/ERR)
  // server -> client
  kScoreOk = 0x81,  // u64 id + f64 proba
  kError = 0x82,    // u64 id + UTF-8 message (id 0 when unattributable)
  kText = 0x83,     // UTF-8 text
};

struct FrameHeader {
  unsigned char magic = 0;
  unsigned char version = 0;
  unsigned char flags = 0;
  unsigned char type = 0;
  std::uint32_t payload_len = 0;
};

/// Field extraction from kHeaderBytes raw bytes; no validation.
FrameHeader DecodeHeader(const unsigned char* bytes);

/// Header sanity for a *request* frame: magic, version, known client
/// frame type, payload cap, and the fixed-size payload floor for the
/// type. Empty string = ok; otherwise a taxonomy-stable reason. A
/// non-empty result for a bad magic/version means the stream is
/// unsynchronized (see kError note above) — IsFramingLost tells the
/// transport whether it can keep the connection.
std::string ValidateRequestHeader(const FrameHeader& header);

/// True when `error` (from ValidateRequestHeader) means the byte stream
/// can no longer be framed and the connection must close after the
/// error is flushed.
bool IsFramingLost(std::string_view error);

/// Decoded kScore request, features excluded (they land in a separate
/// pooled vector).
struct ScoreFrame {
  std::uint64_t id = 0;
  /// Relative deadline in ms; negative when the request carried none.
  double deadline_ms = -1.0;
};

/// Decodes a kScore payload. `features` is resized to the implied
/// count and filled — a straight memcpy for f64 on little-endian
/// hosts. Returns "" on success, else a taxonomy-stable error message
/// (non-finite feature, misaligned payload, bad deadline). The
/// caller checks the count against the model schema — the frame itself
/// does not know the model width.
std::string DecodeScorePayload(const FrameHeader& header,
                               const unsigned char* payload,
                               ScoreFrame& out, std::vector<double>& features);

// ---- encoding (client side and server responses) -------------------
// Append* builds frames into a reusable byte buffer (std::string used
// as bytes) so transports can batch many frames into one write.

void AppendHeader(std::string& out, FrameType type, unsigned char flags,
                  std::uint32_t payload_len);

/// Client: one score request.
void AppendScoreRequest(std::string& out, std::uint64_t id,
                        const double* features, std::size_t count,
                        bool f32 = false, double deadline_ms = -1.0);

/// Client: control frame (kStats / kMetrics have empty payloads;
/// kReload carries the artifact path).
void AppendControlRequest(std::string& out, FrameType type,
                          std::string_view payload = {});

/// Server: responses.
void AppendScoreResponse(std::string& out, std::uint64_t id, double proba,
                         bool degraded);
void AppendErrorResponse(std::string& out, std::uint64_t id,
                         std::string_view message);
void AppendTextResponse(std::string& out, std::string_view text);

/// Decoded response frame (client side: tools, tests, bench).
struct DecodedResponse {
  FrameType type = FrameType::kError;
  bool degraded = false;
  std::uint64_t id = 0;
  double proba = 0.0;
  std::string text;  // kText body or kError message
};

/// Decodes a response frame (header already validated for magic/
/// version/cap by the caller's read loop). Returns "" or a reason.
std::string DecodeResponse(const FrameHeader& header,
                           const unsigned char* payload,
                           DecodedResponse& out);

}  // namespace spe::wire

#endif  // SPE_SERVE_WIRE_H_
