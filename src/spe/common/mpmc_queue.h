#ifndef SPE_COMMON_MPMC_QUEUE_H_
#define SPE_COMMON_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "spe/common/check.h"

namespace spe {

/// Bounded multi-producer / multi-consumer queue built for micro-batch
/// serving: consumers pop *batches*, waiting a bounded time for the
/// batch to fill once the first item arrives. Producers choose their
/// backpressure policy per call — Push blocks while the queue is full,
/// TryPush sheds instead.
///
/// Close() makes the queue drainable: further pushes fail, but items
/// already accepted remain poppable, and PopBatch returns them until
/// the queue is empty. This is what makes graceful shutdown "drain, do
/// not drop": a server closes the queue and workers keep popping until
/// PopBatch returns an empty batch.
///
/// A mutex + two condition variables is deliberately the whole story:
/// at serving batch sizes (tens to hundreds of rows per lock
/// acquisition) the lock is amortized far below contention levels where
/// lock-free rings pay for their complexity.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    SPE_CHECK_GT(capacity, 0u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (and drops `item`)
  /// only if the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: returns false when full or closed (load
  /// shedding — the caller owns telling the client "try later").
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Like Push, but leaves `item` intact when the queue refuses it, so
  /// callers can recover move-only payloads (completion callbacks,
  /// pooled buffers) instead of losing them inside the call.
  bool PushKeep(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Like TryPush, but leaves `item` intact on refusal.
  bool TryPushKeep(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Pops up to `max_items` into `out` (cleared first). Blocks until at
  /// least one item is available; once the first item is in hand, waits
  /// at most `max_delay` for the batch to fill before returning what it
  /// has. Returns the number popped; 0 means closed-and-drained, the
  /// consumer's signal to exit.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_items,
                       std::chrono::microseconds max_delay) {
    out.clear();
    SPE_CHECK_GT(max_items, 0u);
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return 0;  // closed and drained
    TakeLocked(out, max_items);
    if (out.size() < max_items && max_delay.count() > 0 && !closed_) {
      const auto deadline = std::chrono::steady_clock::now() + max_delay;
      while (out.size() < max_items) {
        if (!not_empty_.wait_until(lock, deadline, [&] {
              return !items_.empty() || closed_;
            })) {
          break;  // deadline hit with nothing new
        }
        if (items_.empty()) break;  // woken by Close
        TakeLocked(out, max_items);
      }
    }
    lock.unlock();
    not_full_.notify_all();
    return out.size();
  }

  /// Rejects future pushes and wakes all waiters. Items already queued
  /// stay available to PopBatch (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  void TakeLocked(std::vector<T>& out, std::size_t max_items) {
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace spe

#endif  // SPE_COMMON_MPMC_QUEUE_H_
