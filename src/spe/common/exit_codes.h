#ifndef SPE_COMMON_EXIT_CODES_H_
#define SPE_COMMON_EXIT_CODES_H_

#include <string_view>

namespace spe {

/// Unified exit-code taxonomy for spe_cli and spe_serve, asserted
/// exactly by the pipeline ctests and documented in docs/robustness.md.
/// Orchestrators can branch on these: retry a 3, page on a 4, and treat
/// a 5 as a chaos-harness artifact rather than an incident.
enum ExitCode : int {
  kExitOk = 0,
  /// Unclassified runtime failure (the catch-all it always was).
  kExitRuntime = 1,
  /// Bad flags or malformed invocation (pre-existing convention).
  kExitUsage = 2,
  /// A file could not be opened/read/written, after bounded retries.
  kExitIo = 3,
  /// An artifact or checkpoint failed integrity validation: bad magic,
  /// CRC mismatch, truncation, parse failure, or a checkpoint written
  /// by a different run (config/data fingerprint mismatch).
  kExitCorruptArtifact = 4,
  /// An SPE_FAULTS-injected failure survived retries. Distinct from
  /// kExitIo so chaos runs never masquerade as real disk trouble.
  kExitFault = 5,
};

/// Maps a probe/load error message onto the taxonomy. The error strings
/// are produced by spe/io and spe/checkpoint; classifying the message
/// keeps those modules free of process-exit policy.
inline int ClassifyArtifactErrorExit(std::string_view error) {
  if (error.find("injected fault") != std::string_view::npos) {
    return kExitFault;
  }
  if (error.find("cannot open") != std::string_view::npos ||
      error.find("cannot write") != std::string_view::npos) {
    return kExitIo;
  }
  return kExitCorruptArtifact;
}

}  // namespace spe

#endif  // SPE_COMMON_EXIT_CODES_H_
