#ifndef SPE_COMMON_RNG_H_
#define SPE_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "spe/common/check.h"

namespace spe {

/// Seeded random number generator used everywhere in the library.
///
/// Every stochastic component (re-samplers, ensemble trainers, synthetic
/// data generators) takes an explicit `Rng&` or seed so experiments are
/// reproducible run-to-run: the paper reports mean ± std over 10
/// independent runs, which we reproduce by varying only the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n) {
    SPE_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Standard normal draw.
  double Gaussian() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child generator; lets one experiment seed
  /// spawn per-model / per-iteration streams without correlation.
  Rng Fork() { return Rng(engine_()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// `count` distinct indices sampled uniformly from [0, n) without
  /// replacement. Requires count <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t count) {
    SPE_CHECK_LE(count, n);
    // Partial Fisher-Yates: O(n) memory but O(count) swaps; fine at the
    // dataset sizes this library targets.
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t j = i + Index(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(count);
    return pool;
  }

  /// `count` indices sampled uniformly from [0, n) with replacement.
  std::vector<std::size_t> SampleWithReplacement(std::size_t n, std::size_t count) {
    std::vector<std::size_t> out(count);
    for (auto& v : out) v = Index(n);
    return out;
  }

  /// Access to the raw engine for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace spe

#endif  // SPE_COMMON_RNG_H_
