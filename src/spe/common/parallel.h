#ifndef SPE_COMMON_PARALLEL_H_
#define SPE_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace spe {

/// Number of worker threads used by ParallelFor. Defaults to the hardware
/// concurrency; the SPE_THREADS environment variable overrides it.
std::size_t NumThreads();

/// Runs fn(i) for every i in [begin, end), splitting the range into
/// contiguous chunks across NumThreads() workers. Falls back to a plain
/// serial loop when the range is small or only one thread is available,
/// so callers can use it unconditionally. fn must be thread-safe across
/// distinct indices.
///
/// If fn throws, the first exception is rethrown on the calling thread
/// after all workers finish (in the parallel regime the remaining
/// indices of other chunks still run before the rethrow).
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace spe

#endif  // SPE_COMMON_PARALLEL_H_
