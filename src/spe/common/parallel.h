#ifndef SPE_COMMON_PARALLEL_H_
#define SPE_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace spe {

/// Cumulative scheduling counters kept by the parallel runtime since
/// process start. Counted per loop / per chunk — never per index — so
/// the accounting stays out of hot inner loops. Rendered by the obs
/// metrics exposition (common/ cannot depend on obs/, so the runtime
/// owns the counters and obs pulls a snapshot).
struct ParallelCounters {
  std::uint64_t parallel_loops = 0;       ///< loops fanned out to the pool
  std::uint64_t serial_loops = 0;         ///< loops run serially (small range / 1 thread)
  std::uint64_t nested_inline_loops = 0;  ///< loops inlined inside a pool worker
  std::uint64_t chunks = 0;               ///< chunks claimed and executed
  std::uint64_t workers_spawned = 0;      ///< pool threads ever created
};

/// Relaxed-atomic snapshot of the counters above. Non-empty loops only.
ParallelCounters GetParallelCounters();

/// Number of worker threads used by the ParallelFor family. Defaults to
/// the hardware concurrency; the SPE_THREADS environment variable
/// overrides the default and SetNumThreads() overrides both.
std::size_t NumThreads();

/// Process-wide thread-count override; 0 restores the SPE_THREADS /
/// hardware default. Safe to flip between operations because of the
/// library's determinism contract (docs/performance.md): every parallel
/// loop produces bit-identical results for any thread count, so this
/// knob only changes speed. Benchmarks use it to measure scaling within
/// one process.
void SetNumThreads(std::size_t n);

/// Runs fn(i) for every i in [begin, end), splitting the range into
/// contiguous chunks across NumThreads() workers drawn from a shared
/// lazily-started pool. Falls back to a plain serial loop when the range
/// is small, only one thread is configured, or the caller is itself a
/// pool worker (nested parallel loops run inline), so callers can use it
/// unconditionally. fn must be thread-safe across distinct indices.
///
/// If fn throws, the first exception is rethrown on the calling thread
/// after the loop finishes (in the parallel regime the remaining
/// indices of other chunks still run before the rethrow).
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// ParallelFor with an explicit minimum chunk size: no worker receives
/// fewer than `min_grain` indices, so ranges shorter than 2 * min_grain
/// run serially. Use for cheap per-index bodies (per-row scoring) where
/// fan-out only pays for itself above a known batch size.
void ParallelForGrain(std::size_t begin, std::size_t end,
                      std::size_t min_grain,
                      const std::function<void(std::size_t)>& fn);

/// ParallelFor for coarse independent tasks (training one ensemble
/// member, running one benchmark cell): parallelizes any range with at
/// least two indices instead of requiring 2 * NumThreads() of them.
void ParallelForTasks(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

}  // namespace spe

#endif  // SPE_COMMON_PARALLEL_H_
