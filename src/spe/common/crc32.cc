#include "spe/common/crc32.h"

#include <array>
#include <cstring>

namespace spe {
namespace {

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[j][b]
// is the CRC of byte b followed by j zero bytes. Eight lookups advance
// the CRC a full 8 input bytes per loop iteration, which matters
// because every checkpoint and model-bundle write CRCs its whole
// payload (hundreds of KB per self-paced iteration when checkpointing
// is on).
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
};

Crc32Tables BuildTables() {
  Crc32Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables.t[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = tables.t[0][c & 0xFFu] ^ (c >> 8);
      tables.t[j][i] = c;
    }
  }
  return tables;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data) {
  static const Crc32Tables tables = BuildTables();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The wide path assumes little-endian 32-bit loads; big-endian
  // machines fall through to the (still correct) byte loop.
  while (n >= 8) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables.t[7][lo & 0xFFu] ^ tables.t[6][(lo >> 8) & 0xFFu] ^
        tables.t[5][(lo >> 16) & 0xFFu] ^ tables.t[4][lo >> 24] ^
        tables.t[3][hi & 0xFFu] ^ tables.t[2][(hi >> 8) & 0xFFu] ^
        tables.t[1][(hi >> 16) & 0xFFu] ^ tables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  while (n-- > 0) {
    c = tables.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace spe
