#ifndef SPE_COMMON_RETRY_H_
#define SPE_COMMON_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace spe {

/// Failure of an I/O operation that a later attempt may succeed at — a
/// flaky disk, a mount blip, or an injected SPE_FAULTS failure. Thrown
/// by the transient fault-injection points (data_io_fail_rate,
/// artifact_write_fail_rate, artifact_read_fail_rate) and by callers
/// that classify their own errors as retryable. RetryWithBackoff
/// catches exactly this type; everything else (corrupt artifact, logic
/// error) propagates immediately, because retrying cannot heal it.
class TransientIoError : public std::runtime_error {
 public:
  explicit TransientIoError(const std::string& what, bool injected = false)
      : std::runtime_error(what), injected_(injected) {}

  /// True when the failure came from the SPE_FAULTS registry rather
  /// than the real filesystem. The exit-code taxonomy
  /// (spe/common/exit_codes.h) reports the two differently so a chaos
  /// run is distinguishable from a genuinely broken disk.
  bool injected() const { return injected_; }

 private:
  bool injected_ = false;
};

/// Bounded jittered exponential backoff. Attempt k (1-based) sleeps
///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
/// scaled by a uniform draw from [1 - jitter, 1] before retrying. The
/// jitter stream is seeded (same policy => same delays), so retrying
/// never perturbs the training determinism contract — backoff touches
/// the wall clock only, never the model RNG.
struct RetryPolicy {
  std::size_t max_attempts = 4;        ///< total tries, including the first
  std::uint64_t initial_backoff_ms = 5;
  double multiplier = 2.0;
  std::uint64_t max_backoff_ms = 2000;
  double jitter = 0.5;                 ///< fraction shaved off, in [0, 1)
  std::uint64_t seed = 0;              ///< jitter stream seed
};

namespace internal_retry {

/// Delay before retry number `attempt` (1 = after the first failure),
/// with the jitter draw taken from `jitter_state` (advanced in place).
/// Exposed for tests; callers use RetryWithBackoff.
std::uint64_t BackoffMs(const RetryPolicy& policy, std::size_t attempt,
                        std::uint64_t& jitter_state);

void SleepMs(std::uint64_t ms);
void LogRetry(std::string_view what, std::size_t attempt,
              std::size_t max_attempts, std::uint64_t delay_ms,
              const char* reason);
void CountRetry();
void CountExhausted();

}  // namespace internal_retry

/// Runs `op()`, retrying on TransientIoError with the policy's jittered
/// exponential backoff, up to max_attempts total tries. Rethrows the
/// last error once attempts are exhausted; any other exception type
/// propagates on the first occurrence. `what` names the operation in
/// the per-retry stderr log line. Retries are counted in the
/// spe_io_retries_total / spe_io_retries_exhausted_total metrics.
template <typename Op>
auto RetryWithBackoff(const RetryPolicy& policy, std::string_view what,
                      Op&& op) -> decltype(op()) {
  std::uint64_t jitter_state = policy.seed + 0x9e3779b97f4a7c15ull;
  const std::size_t attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientIoError& error) {
      if (attempt >= attempts) {
        internal_retry::CountExhausted();
        throw;
      }
      internal_retry::CountRetry();
      const std::uint64_t delay_ms =
          internal_retry::BackoffMs(policy, attempt, jitter_state);
      internal_retry::LogRetry(what, attempt, attempts, delay_ms,
                               error.what());
      internal_retry::SleepMs(delay_ms);
    }
  }
}

}  // namespace spe

#endif  // SPE_COMMON_RETRY_H_
