#include "spe/common/parallel.h"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace spe {

std::size_t NumThreads() {
  static const std::size_t n = [] {
    if (const char* env = std::getenv("SPE_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : hw;
  }();
  return n;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t threads = NumThreads();
  // Thread spawn overhead dominates on tiny ranges; run serially.
  if (threads <= 1 || count < 2 * threads) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (count + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // An exception escaping a std::thread body calls std::terminate, so
  // each worker parks the first one thrown and the caller rethrows it
  // after every worker has joined (remaining chunks still run — fn must
  // already tolerate concurrent calls, so there is no partial-state
  // contract to preserve by stopping early).
  std::mutex error_mu;
  std::exception_ptr first_error;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t lo = begin + t * chunk;
    if (lo >= end) break;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    workers.emplace_back([lo, hi, &fn, &error_mu, &first_error] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace spe
