#include "spe/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace spe {
namespace {

std::atomic<std::size_t> g_thread_override{0};

// Scheduling counters behind GetParallelCounters(). Bumped per loop or
// per chunk, so the cost is noise next to the work being scheduled.
struct AtomicParallelCounters {
  std::atomic<std::uint64_t> parallel_loops{0};
  std::atomic<std::uint64_t> serial_loops{0};
  std::atomic<std::uint64_t> nested_inline_loops{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> workers_spawned{0};
};

AtomicParallelCounters g_counters;

// One chunked loop submitted to the worker pool. Chunks are claimed with
// an atomic cursor, so scheduling is dynamic, but every index writes only
// its own outputs — which thread executes a chunk can never change the
// result, only the wall clock. That is the whole determinism contract.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable all_done;
  std::exception_ptr first_error;  // guarded by mu

  // Claims and runs one chunk; false when none are left. Safe to call on
  // a finished job whose fn has gone out of scope: the cursor check
  // precedes any dereference.
  bool RunOneChunk() {
    const std::size_t c = next.fetch_add(1);
    if (c >= num_chunks) return false;
    g_counters.chunks.fetch_add(1, std::memory_order_relaxed);
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    try {
      for (std::size_t i = lo; i < hi; ++i) (*fn)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
    if (done.fetch_add(1) + 1 == num_chunks) {
      // Lock pairs with the waiter so the notify cannot slip between its
      // predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mu);
      all_done.notify_all();
    }
    return true;
  }
};

// Lazily grown pool of detached workers shared by every parallel loop in
// the process. Jobs stay at the queue front until their chunk cursor is
// exhausted, so any number of workers can help with the same loop. The
// pool is deliberately leaked: workers park on the condition variable
// forever and process teardown never races a joining destructor.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool;
    return *pool;
  }

  // True while the current thread is a pool worker: nested parallel
  // loops run serially inline instead of re-entering the pool, which
  // keeps results identical and makes worker-side deadlock impossible.
  static thread_local bool in_worker;

  // Runs `job` to completion using up to `helpers` pool workers plus the
  // calling thread, then rethrows the first parked exception.
  void Run(const std::shared_ptr<Job>& job, std::size_t helpers) {
    EnsureWorkers(helpers);
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(job);
    }
    queue_cv_.notify_all();
    while (job->RunOneChunk()) {
    }
    {
      std::unique_lock<std::mutex> lock(job->mu);
      job->all_done.wait(
          lock, [&] { return job->done.load() == job->num_chunks; });
    }
    {
      // The job may still sit in the queue if the caller claimed every
      // chunk before a worker woke; retire it so it cannot pile up.
      const std::lock_guard<std::mutex> lock(queue_mu_);
      const auto it = std::find(queue_.begin(), queue_.end(), job);
      if (it != queue_.end()) queue_.erase(it);
    }
    if (job->first_error) std::rethrow_exception(job->first_error);
  }

 private:
  void EnsureWorkers(std::size_t target) {
    const std::lock_guard<std::mutex> lock(spawn_mu_);
    while (spawned_ < target) {
      std::thread([this] { WorkerLoop(); }).detach();
      ++spawned_;
      g_counters.workers_spawned.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void WorkerLoop() {
    in_worker = true;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return !queue_.empty(); });
        job = queue_.front();
      }
      if (!job->RunOneChunk()) {
        const std::lock_guard<std::mutex> lock(queue_mu_);
        if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
      }
    }
  }

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::mutex spawn_mu_;
  std::size_t spawned_ = 0;
};

thread_local bool Pool::in_worker = false;

void RunSerial(std::size_t begin, std::size_t end,
               const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

// Shared parallel path: splits [begin, end) into `workers` contiguous
// chunks and runs them on the pool with the caller participating.
void RunChunked(std::size_t begin, std::size_t end, std::size_t workers,
                const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end - begin;
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->chunk = (count + workers - 1) / workers;
  job->num_chunks = (count + job->chunk - 1) / job->chunk;
  g_counters.parallel_loops.fetch_add(1, std::memory_order_relaxed);
  Pool::Instance().Run(job, workers - 1);
}

// Serial fallbacks are counted by cause: nested loops inlined inside a
// pool worker are a scheduling event worth watching separately from
// loops that were simply too small to fan out.
void CountSerial() {
  if (Pool::in_worker) {
    g_counters.nested_inline_loops.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_counters.serial_loops.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::size_t NumThreads() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  static const std::size_t n = [] {
    if (const char* env = std::getenv("SPE_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : hw;
  }();
  return n;
}

void SetNumThreads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t threads = NumThreads();
  // Fan-out overhead dominates on tiny ranges; run serially.
  if (threads <= 1 || count < 2 * threads || Pool::in_worker) {
    CountSerial();
    RunSerial(begin, end, fn);
    return;
  }
  RunChunked(begin, end, threads, fn);
}

void ParallelForGrain(std::size_t begin, std::size_t end,
                      std::size_t min_grain,
                      const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t grain = std::max<std::size_t>(1, min_grain);
  const std::size_t workers = std::min(NumThreads(), count / grain);
  if (workers <= 1 || Pool::in_worker) {
    CountSerial();
    RunSerial(begin, end, fn);
    return;
  }
  RunChunked(begin, end, workers, fn);
}

void ParallelForTasks(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn) {
  ParallelForGrain(begin, end, 1, fn);
}

ParallelCounters GetParallelCounters() {
  ParallelCounters out;
  out.parallel_loops = g_counters.parallel_loops.load(std::memory_order_relaxed);
  out.serial_loops = g_counters.serial_loops.load(std::memory_order_relaxed);
  out.nested_inline_loops =
      g_counters.nested_inline_loops.load(std::memory_order_relaxed);
  out.chunks = g_counters.chunks.load(std::memory_order_relaxed);
  out.workers_spawned =
      g_counters.workers_spawned.load(std::memory_order_relaxed);
  return out;
}

}  // namespace spe
