#ifndef SPE_COMMON_FAULT_H_
#define SPE_COMMON_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>

namespace spe {

/// What the fault-injection registry can do. All faults default to off;
/// a default-constructed config is a no-op registry.
struct FaultConfig {
  /// Sleep this long in the scoring worker after popping a batch,
  /// before deadline triage and model dispatch. Simulates a slow or
  /// stalled model so queueing-delay paths (deadline expiry, watermark
  /// degradation) are reachable deterministically in tests.
  std::uint64_t score_delay_ms = 0;
  /// Probability in [0, 1] that a model artifact file operation
  /// (SaveModelBundleToFile before the atomic rename,
  /// LoadModelBundleFromFile before the read) fails. 1.0 fails every
  /// operation; intermediate rates draw from a seeded deterministic
  /// stream.
  double model_io_fail_rate = 0.0;
  /// Probability in [0, 1] that a model/checkpoint artifact *write*
  /// fails transiently (TransientIoError before the atomic rename, so
  /// nothing is ever half-published). Unlike model_io_fail_rate, which
  /// aborts the process, these rates model recoverable I/O weather and
  /// compose with spe/common/retry.
  double artifact_write_fail_rate = 0.0;
  /// Probability in [0, 1] that a model/checkpoint artifact *read*
  /// fails transiently (TransientIoError before any bytes are parsed).
  double artifact_read_fail_rate = 0.0;
  /// Probability in [0, 1] that loading a training dataset (LoadCsv /
  /// LoadLibsvm) fails transiently.
  double data_io_fail_rate = 0.0;
  /// When nonzero, SIGKILL the process immediately after the
  /// checkpoint for self-paced iteration N is published — the chaos
  /// harness's model of preemption/OOM-kill at the worst moment. A
  /// real SIGKILL, not an abort: no destructors, no atexit, no flush.
  std::uint64_t crash_at_iteration = 0;
  /// Seed for the probabilistic faults above. Same seed, same spec =>
  /// same fault sequence.
  std::uint64_t seed = 0;
};

/// Process-wide fault-injection registry.
///
/// Production code never branches on "is testing": it calls the
/// injection points below unconditionally, and with the default (empty)
/// config every point is a no-op costing one relaxed atomic load. Tests
/// and harnesses turn faults on either programmatically (Configure) or
/// via the SPE_FAULTS environment variable, read once at first use:
///
///   SPE_FAULTS="score_delay_ms=50,model_io_fail_rate=0.25,seed=7"
///   SPE_FAULTS="crash_at_iteration=3"
///   SPE_FAULTS="artifact_write_fail_rate=1,data_io_fail_rate=0.5,seed=2"
///
/// The full grammar is documented in docs/robustness.md.
///
/// A malformed SPE_FAULTS aborts at startup with the offending token —
/// a fault plan that silently half-applies would defeat the point.
class FaultRegistry {
 public:
  /// The process-wide instance. First call reads SPE_FAULTS.
  static FaultRegistry& Instance();

  /// Replaces the active config (tests). Resets the fault RNG stream to
  /// config.seed so every Configure starts an identical sequence.
  void Configure(const FaultConfig& config);

  /// Turns every fault off (equivalent to Configure({})).
  void Reset();

  /// Parses a "key=value,key=value" spec into `config`. Returns false
  /// and sets `error` on an unknown key, bad number, or out-of-range
  /// value. Does not modify the registry.
  static bool ParseSpec(std::string_view spec, FaultConfig* config,
                        std::string* error);

  FaultConfig config() const;

  /// True when any fault is active (cheap; callers may use it to skip
  /// building failure-path-only state).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ---- injection points ----------------------------------------------

  /// Worker-loop injection point: sleeps score_delay_ms (no-op when 0).
  void InjectScoreDelay() const;

  /// Model-IO injection point: one deterministic Bernoulli draw against
  /// model_io_fail_rate. True means the caller must fail the operation.
  bool ShouldFailModelIo();

  /// Transient-fault injection points: one deterministic Bernoulli draw
  /// each. True means the caller must throw TransientIoError (the
  /// callers in spe/io and spe/data do exactly that).
  bool ShouldFailArtifactWrite();
  bool ShouldFailArtifactRead();
  bool ShouldFailDataIo();

  /// Training crash point: SIGKILLs the process when `iteration`
  /// equals crash_at_iteration. Called by SelfPacedEnsemble::Fit right
  /// after each iteration's checkpoint publishes; a no-op otherwise.
  void MaybeCrashAtIteration(std::size_t iteration) const;

 private:
  FaultRegistry();

  /// One Bernoulli draw from the shared engine against the given rate
  /// field. Zero-rate faults never draw, so enabling one fault cannot
  /// shift another fault's deterministic sequence.
  bool DrawFailure(double FaultConfig::* rate);

  mutable std::mutex mu_;
  FaultConfig config_;
  std::mt19937_64 engine_{0};
  std::atomic<bool> enabled_{false};
};

/// Shorthand for FaultRegistry::Instance().
FaultRegistry& Faults();

}  // namespace spe

#endif  // SPE_COMMON_FAULT_H_
