#ifndef SPE_COMMON_MATH_H_
#define SPE_COMMON_MATH_H_

#include <algorithm>
#include <cmath>

namespace spe {

/// Numerically stable logistic function.
inline double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Half log-odds of a probability, clamped away from 0/1 — the real-
/// boosting stage contribution used by AdaBoost-family learners.
inline double HalfLogOdds(double p) {
  constexpr double kClamp = 1e-6;
  p = std::clamp(p, kClamp, 1.0 - kClamp);
  return 0.5 * std::log(p / (1.0 - p));
}

}  // namespace spe

#endif  // SPE_COMMON_MATH_H_
