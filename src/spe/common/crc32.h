#ifndef SPE_COMMON_CRC32_H_
#define SPE_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace spe {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320, reflected,
/// initial and final XOR 0xFFFFFFFF). Used by the model-artifact format
/// to detect truncation and bit rot; check value: Crc32("123456789") ==
/// 0xCBF43926.
std::uint32_t Crc32(std::string_view data);

/// Incremental form: feed `crc` the running value (start with 0) and
/// chain calls over chunks. Crc32(a+b) == Crc32Update(Crc32(a), b).
std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data);

}  // namespace spe

#endif  // SPE_COMMON_CRC32_H_
