#include "spe/common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "spe/obs/metrics.h"

namespace spe {
namespace internal_retry {
namespace {

// SplitMix64: one multiply-xor round per draw. A full std::mt19937_64
// would be overkill for jitter, and keeping the state a single word
// makes BackoffMs trivially testable.
std::uint64_t NextState(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t BackoffMs(const RetryPolicy& policy, std::size_t attempt,
                        std::uint64_t& jitter_state) {
  double delay = static_cast<double>(policy.initial_backoff_ms);
  for (std::size_t i = 1; i < attempt; ++i) delay *= policy.multiplier;
  delay = std::min(delay, static_cast<double>(policy.max_backoff_ms));
  const double jitter = std::clamp(policy.jitter, 0.0, 0.999);
  // Uniform in [1 - jitter, 1]: spreading retries out below the cap
  // avoids the synchronized-stampede failure mode without ever waiting
  // longer than the deterministic envelope.
  const double u = static_cast<double>(NextState(jitter_state) >> 11) /
                   static_cast<double>(1ull << 53);
  delay *= 1.0 - jitter * u;
  return static_cast<std::uint64_t>(std::llround(std::max(delay, 0.0)));
}

void SleepMs(std::uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void LogRetry(std::string_view what, std::size_t attempt,
              std::size_t max_attempts, std::uint64_t delay_ms,
              const char* reason) {
  std::fprintf(stderr,
               "[spe] transient failure (%s), retrying in %llums "
               "(attempt %zu/%zu): %s\n",
               std::string(what).c_str(),
               static_cast<unsigned long long>(delay_ms), attempt,
               max_attempts, reason);
}

void CountRetry() {
  obs::MetricsRegistry::Global().GetCounter("spe_io_retries_total").Add(1);
}

void CountExhausted() {
  obs::MetricsRegistry::Global()
      .GetCounter("spe_io_retries_exhausted_total")
      .Add(1);
}

}  // namespace internal_retry
}  // namespace spe
