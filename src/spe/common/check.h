#ifndef SPE_COMMON_CHECK_H_
#define SPE_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace spe {
namespace internal_check {

/// Aborts the process after printing `msg` (with file/line context).
/// Used by the CHECK family below; never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);

/// Stream-based message builder so call sites can write
/// `CHECK(x > 0) << "x was " << x;`.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << condition << " ";
  }

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace spe

/// Contract-violation assertions. These stay enabled in release builds:
/// a classifier trained on an empty dataset or a probability outside
/// [0, 1] is a programming error we want to fail loudly on, not a
/// recoverable condition.
#define SPE_CHECK(condition)                                            \
  if (condition) {                                                      \
  } else /* NOLINT */                                                   \
    ::spe::internal_check::CheckMessage(__FILE__, __LINE__, #condition)

#define SPE_CHECK_EQ(a, b) SPE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPE_CHECK_NE(a, b) SPE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPE_CHECK_LT(a, b) SPE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPE_CHECK_LE(a, b) SPE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPE_CHECK_GT(a, b) SPE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPE_CHECK_GE(a, b) SPE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SPE_COMMON_CHECK_H_
