#include "spe/common/fault.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "spe/common/check.h"
#include "spe/common/parse.h"

namespace spe {

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry& Faults() { return FaultRegistry::Instance(); }

FaultRegistry::FaultRegistry() {
  const char* spec = std::getenv("SPE_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  FaultConfig config;
  std::string error;
  SPE_CHECK(ParseSpec(spec, &config, &error))
      << "bad SPE_FAULTS: " << error;
  // Configure() locks mu_; safe here because the constructor runs once
  // under the static-local guard before Instance() returns.
  Configure(config);
}

void FaultRegistry::Configure(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  engine_.seed(config.seed);
  enabled_.store(config.score_delay_ms > 0 || config.model_io_fail_rate > 0 ||
                     config.artifact_write_fail_rate > 0 ||
                     config.artifact_read_fail_rate > 0 ||
                     config.data_io_fail_rate > 0 ||
                     config.crash_at_iteration > 0,
                 std::memory_order_relaxed);
}

void FaultRegistry::Reset() { Configure(FaultConfig{}); }

bool FaultRegistry::ParseSpec(std::string_view spec, FaultConfig* config,
                              std::string* error) {
  FaultConfig parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      *error = "expected key=value, got '" + std::string(entry) + "'";
      return false;
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    if (key == "score_delay_ms" || key == "seed" ||
        key == "crash_at_iteration") {
      const auto v = ParseInt64(value);
      if (!v || *v < 0) {
        *error = std::string(key) + " expects a non-negative integer, got '" +
                 std::string(value) + "'";
        return false;
      }
      std::uint64_t* slot = key == "seed"             ? &parsed.seed
                            : key == "score_delay_ms" ? &parsed.score_delay_ms
                                                      : &parsed.crash_at_iteration;
      *slot = static_cast<std::uint64_t>(*v);
    } else if (key == "model_io_fail_rate" ||
               key == "artifact_write_fail_rate" ||
               key == "artifact_read_fail_rate" || key == "data_io_fail_rate") {
      const auto v = ParseFiniteDouble(value);
      if (!v || *v < 0.0 || *v > 1.0) {
        *error = std::string(key) + " expects a number in [0, 1], got '" +
                 std::string(value) + "'";
        return false;
      }
      double* slot = key == "model_io_fail_rate" ? &parsed.model_io_fail_rate
                     : key == "artifact_write_fail_rate"
                         ? &parsed.artifact_write_fail_rate
                     : key == "artifact_read_fail_rate"
                         ? &parsed.artifact_read_fail_rate
                         : &parsed.data_io_fail_rate;
      *slot = *v;
    } else {
      *error = "unknown fault '" + std::string(key) + "'";
      return false;
    }
  }
  *config = parsed;
  return true;
}

FaultConfig FaultRegistry::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void FaultRegistry::InjectScoreDelay() const {
  if (!enabled()) return;
  std::uint64_t delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay_ms = config_.score_delay_ms;
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

bool FaultRegistry::ShouldFailModelIo() {
  return DrawFailure(&FaultConfig::model_io_fail_rate);
}

bool FaultRegistry::ShouldFailArtifactWrite() {
  return DrawFailure(&FaultConfig::artifact_write_fail_rate);
}

bool FaultRegistry::ShouldFailArtifactRead() {
  return DrawFailure(&FaultConfig::artifact_read_fail_rate);
}

bool FaultRegistry::ShouldFailDataIo() {
  return DrawFailure(&FaultConfig::data_io_fail_rate);
}

bool FaultRegistry::DrawFailure(double FaultConfig::* rate) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // Zero-rate faults must not draw: an unrelated active fault would
  // otherwise shift the shared engine's sequence and change which
  // operations fail under a given seed.
  if (config_.*rate <= 0.0) return false;
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) <
         config_.*rate;
}

void FaultRegistry::MaybeCrashAtIteration(std::size_t iteration) const {
  if (!enabled()) return;
  std::uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = config_.crash_at_iteration;
  }
  if (target == 0 || iteration != target) return;
  std::fprintf(stderr,
               "[spe] SPE_FAULTS crash_at_iteration=%llu: killing process\n",
               static_cast<unsigned long long>(target));
  std::fflush(stderr);
  std::raise(SIGKILL);
}

}  // namespace spe
