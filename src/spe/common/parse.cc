#include "spe/common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace spe {
namespace {

/// Trims ASCII whitespace and returns the trimmed copy (strto* needs a
/// NUL-terminated buffer anyway, so the copy is free).
std::string Trimmed(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

}  // namespace

std::optional<long long> ParseInt64(std::string_view text) {
  const std::string s = Trimmed(text);
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  // Base 10 only: "0x10" as a flag value is far more likely a typo than
  // intentional hex.
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> ParseFiniteDouble(std::string_view text) {
  const std::string s = Trimmed(text);
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  if (errno == ERANGE || !std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace spe
