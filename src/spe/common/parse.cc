#include "spe/common/parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace spe {
namespace {

/// Trims ASCII whitespace. strtoll still needs a NUL-terminated buffer
/// for the integer path, so the copy stays.
std::string Trimmed(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

/// For a number token from_chars flagged out-of-range: true when its
/// decimal exponent says overflow (|x| > DBL_MAX), false for underflow.
/// Out-of-range only happens past ~1e±308, so the sign of the decimal
/// exponent of the leading significant digit is decisive.
bool OutOfRangeIsOverflow(std::string_view token) {
  std::size_t j = 0;
  if (j < token.size() && (token[j] == '+' || token[j] == '-')) ++j;
  long long digit_index = 0;   // digits seen, '.' excluded
  long long point = -1;        // digit_index at which '.' appeared
  long long first_sig = -1;    // digit_index of the first nonzero digit
  for (; j < token.size(); ++j) {
    const char c = token[j];
    if (c == '.') {
      point = digit_index;
      continue;
    }
    if (c < '0' || c > '9') break;  // exponent marker (or token end)
    if (first_sig < 0 && c != '0') first_sig = digit_index;
    ++digit_index;
  }
  if (first_sig < 0) return false;  // 0e±huge is representable anyway
  if (point < 0) point = digit_index;
  long long exp10 = 0;
  if (j < token.size() && (token[j] == 'e' || token[j] == 'E')) {
    ++j;
    bool negative = false;
    if (j < token.size() && (token[j] == '+' || token[j] == '-')) {
      negative = token[j] == '-';
      ++j;
    }
    for (; j < token.size() && token[j] >= '0' && token[j] <= '9'; ++j) {
      if (exp10 < 1'000'000) exp10 = exp10 * 10 + (token[j] - '0');
    }
    if (negative) exp10 = -exp10;
  }
  // Value ~= d.ddd * 10^(point - first_sig - 1 + exp10).
  return point - first_sig - 1 + exp10 >= 0;
}

}  // namespace

std::optional<long long> ParseInt64(std::string_view text) {
  const std::string s = Trimmed(text);
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  // Base 10 only: "0x10" as a flag value is far more likely a typo than
  // intentional hex.
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> ParseFiniteDouble(std::string_view text) {
  const std::string s = Trimmed(text);
  if (s.empty()) return std::nullopt;
  std::size_t i = 0;
  double v = 0.0;
  bool out_of_range = false;
  if (!ParseDoublePrefix(s, i, &v, &out_of_range) || i != s.size()) {
    return std::nullopt;
  }
  // The strtod path this replaced rejected ERANGE in both directions:
  // overflow (non-finite anyway) and underflow — "1e-400" is not a
  // representable flag value, not zero.
  if (out_of_range || !std::isfinite(v)) return std::nullopt;
  return v;
}

bool ParseDoublePrefix(std::string_view s, std::size_t& i, double* out,
                       bool* out_of_range) {
  if (out_of_range != nullptr) *out_of_range = false;
  if (i >= s.size()) return false;
  const char* const end = s.data() + s.size();
  // from_chars rejects a leading '+' that strtod accepted; skip it and
  // let from_chars refuse whatever follows ("+-1" stays one refusal).
  const char* begin = s.data() + i;
  if (*begin == '+') ++begin;
  double v = 0.0;
  const std::from_chars_result r =
      std::from_chars(begin, end, v, std::chars_format::general);
  if (r.ec == std::errc::result_out_of_range) {
    // from_chars leaves `v` unmodified here; reconstruct strtod's
    // answer from the token it consumed.
    const std::string_view token(begin, static_cast<std::size_t>(r.ptr - begin));
    const double magnitude = OutOfRangeIsOverflow(token) ? HUGE_VAL : 0.0;
    v = !token.empty() && token.front() == '-' ? -magnitude : magnitude;
    if (out_of_range != nullptr) *out_of_range = true;
  } else if (r.ec != std::errc()) {
    return false;
  }
  i = static_cast<std::size_t>(r.ptr - s.data());
  *out = v;
  return true;
}

}  // namespace spe
