#ifndef SPE_COMMON_PARSE_H_
#define SPE_COMMON_PARSE_H_

#include <optional>
#include <string_view>

namespace spe {

/// Strict numeric parsing for untrusted text (command-line flags, env
/// specs). Unlike atoi/atol/strtod-with-defaults, these reject partial
/// parses ("12abc"), empty strings, surrounding garbage, and values the
/// target type cannot represent — nullopt means "not a number", so the
/// caller owns the error message. Leading/trailing ASCII whitespace is
/// accepted; anything else is not.

/// Whole-string signed integer. Rejects overflow (beyond long long),
/// hex/octal prefixes, and trailing junk.
std::optional<long long> ParseInt64(std::string_view text);

/// Whole-string finite double. Rejects "nan"/"inf" (a flag or fault
/// rate is never usefully non-finite), overflow to infinity, and
/// trailing junk.
std::optional<double> ParseFiniteDouble(std::string_view text);

}  // namespace spe

#endif  // SPE_COMMON_PARSE_H_
