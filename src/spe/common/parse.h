#ifndef SPE_COMMON_PARSE_H_
#define SPE_COMMON_PARSE_H_

#include <optional>
#include <string_view>

namespace spe {

/// Strict numeric parsing for untrusted text (command-line flags, env
/// specs). Unlike atoi/atol/strtod-with-defaults, these reject partial
/// parses ("12abc"), empty strings, surrounding garbage, and values the
/// target type cannot represent — nullopt means "not a number", so the
/// caller owns the error message. Leading/trailing ASCII whitespace is
/// accepted; anything else is not.

/// Whole-string signed integer. Rejects overflow (beyond long long),
/// hex/octal prefixes, and trailing junk.
std::optional<long long> ParseInt64(std::string_view text);

/// Whole-string finite double. Rejects "nan"/"inf" (a flag or fault
/// rate is never usefully non-finite), values outside double's range in
/// either direction ("1e999" and "1e-400" alike, matching strtod's
/// ERANGE policing), and trailing junk.
std::optional<double> ParseFiniteDouble(std::string_view text);

/// Parses the longest strtod-style number starting at s[i] — optional
/// sign, decimal or scientific notation, "inf"/"nan" spellings; no hex
/// floats — and advances i past it. Built on std::from_chars, so the
/// result is identical under every locale (strtod honors the locale's
/// decimal separator, which breaks the wire protocol under a
/// decimal-comma locale). strtod's range semantics are preserved:
/// overflow yields ±infinity, underflow ±0.0, so callers keep their
/// existing finite-value policing; `out_of_range`, when non-null, is
/// set when either happened (strtod's ERANGE) for callers that also
/// policed errno. Returns false (i untouched) when no number starts at
/// i. Non-finite results are deliberately NOT rejected here — the
/// serve protocol wants to distinguish "not a number" from "a
/// non-finite number" in its error taxonomy.
bool ParseDoublePrefix(std::string_view s, std::size_t& i, double* out,
                       bool* out_of_range = nullptr);

}  // namespace spe

#endif  // SPE_COMMON_PARSE_H_
