#ifndef SPE_COMMON_STATS_H_
#define SPE_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "spe/common/check.h"

namespace spe {

/// Arithmetic mean. Requires a non-empty input.
inline double Mean(const std::vector<double>& values) {
  SPE_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Population standard deviation (divides by N, matching how the paper
/// reports the spread of 10 independent runs).
inline double StdDev(const std::vector<double>& values) {
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

/// Mean ± std pair for aggregated experiment results.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

inline MeanStd Aggregate(const std::vector<double>& values) {
  return MeanStd{Mean(values), StdDev(values)};
}

}  // namespace spe

#endif  // SPE_COMMON_STATS_H_
