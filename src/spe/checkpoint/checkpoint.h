#ifndef SPE_CHECKPOINT_CHECKPOINT_H_
#define SPE_CHECKPOINT_CHECKPOINT_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/retry.h"
#include "spe/data/dataset.h"

namespace spe {
namespace checkpoint {

/// Everything SelfPacedEnsemble::Fit needs, beyond the members trained
/// so far, to continue a run as if it had never stopped: the exact RNG
/// engine state, the next iteration to execute, the bootstrap model f0
/// when it is not an ensemble member, and — when training under
/// FitWithValidation — the early-stop bookkeeping. The fingerprints pin
/// the checkpoint to one (config, dataset) pair so a stale file from a
/// different run is refused instead of silently resumed.
///
/// Deliberately absent: the running probability accumulators. They are
/// pure functions of (members, dataset) — resume replays each restored
/// member's PredictProba in vote order, which is bit-identical to the
/// original accumulation by the determinism contract. Storing them
/// would make every checkpoint O(dataset rows); recomputing keeps the
/// file O(model) and moves the cost to the rare resume path.
struct TrainerStateCore {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t data_fingerprint = 0;
  std::size_t n_estimators = 0;
  bool include_bootstrap = false;
  /// 1-based self-paced iteration to run next; n_estimators + 1 means
  /// every iteration finished and only post-processing remains.
  std::size_t next_iteration = 1;
  /// Members folded into the training accumulator (bootstrap f0
  /// included), the divisor of the hardness average.
  std::size_t prob_count = 0;
  /// std::mt19937_64 textual state (operator<< / operator>> round-trip
  /// exactly, per the standard).
  std::string rng_state;
  /// SaveClassifier bytes of the bootstrap model f0 when
  /// include_bootstrap is false (f0 seeds the hardness average but does
  /// not vote, so it lives nowhere else). Empty when f0 is members[0].
  std::string bootstrap_blob;
  // FitWithValidation early-stop state; meaningful iff has_validation.
  bool has_validation = false;
  double best_auc = -1.0;
  std::size_t best_size = 0;
  std::size_t scored_members = 0;
};

/// Outcome of a non-aborting checkpoint load. `missing` (no file) is a
/// normal fresh start, not an error; every other failure carries a
/// reason in `error`.
struct LoadResult {
  TrainerStateCore core;
  VotingEnsemble members;
  std::string error;
  bool missing = false;
  /// Byte length of the manifest's valid record prefix — the end of the
  /// newest complete, CRC-clean commit record. Resume hands this to
  /// AsyncCheckpointPublisher::BeginLog so new records append after it
  /// (any torn tail past it is truncated away).
  std::uint64_t manifest_bytes = 0;
  bool ok() const { return error.empty() && !missing; }
};

/// The checkpoint manifest a training run maintains inside its
/// checkpoint directory — the commit point of every checkpoint. The
/// manifest is itself append-only: each publish appends one
/// envelope-framed commit record, and the loader honours the newest
/// complete record whose CRC checks out. A record cut short by a crash
/// (its advertised payload runs past end-of-file, or its header line
/// never got its newline) is a torn append — the loader falls back to
/// the previous record. A record that is fully present but fails its
/// CRC cannot come from a torn append (crashed appends only ever leave
/// prefixes), so it is refused as corruption rather than skipped.
/// Appending costs one positional write instead of a create+rename pair
/// per iteration, which is what makes --checkpoint-every 1 affordable.
std::string CheckpointPath(const std::string& directory);

/// The append-only member log riding next to a manifest (its sibling
/// `<manifest>.members`). Model bytes dominate checkpoint size, and the
/// already-trained prefix never changes, so each iteration appends only
/// the newest member's record here instead of rewriting the whole
/// ensemble. The manifest records how many log bytes it vouches for and
/// their CRC-32; anything past that prefix is a torn append from a
/// crash and is ignored by the loader.
std::string MemberLogPath(const std::string& checkpoint_path);

/// Writes a complete checkpoint — member log, then a single-record
/// manifest — from scratch. Each manifest record carries the artifact
/// family's integrity envelope:
///
///   spe-checkpoint 1 payload_bytes B crc32 HHHHHHHH
///   <payload>
///
/// and the payload pins the log prefix it was written against (byte
/// count + CRC-32), so corruption in either file is detected. The log
/// embeds the members via SaveClassifier, so exactly the classifier
/// types the artifact format supports are checkpointable. Both files
/// publish via sibling tmp + rename(2) here; transient failures
/// (artifact_write_fail_rate or a real write error) retry under `retry`
/// and throw TransientIoError once attempts are exhausted.
void SaveTrainerStateToFile(const TrainerStateCore& core,
                            const VotingEnsemble& members,
                            const std::string& path,
                            const RetryPolicy& retry = {});

/// Fast-path variant taking pre-serialized member blobs (each one
/// SaveClassifier's output for one member, in vote order). Byte-
/// identical to the VotingEnsemble overload by construction.
void SaveTrainerStateToFile(const TrainerStateCore& core,
                            const std::vector<std::string>& member_blobs,
                            const std::string& path,
                            const RetryPolicy& retry = {});

/// Non-aborting load: scans the manifest's commit records (magic,
/// version, payload length, CRC-32 per record), settles on the newest
/// complete valid one — a torn tail falls back, a CRC-bad complete
/// record is refused — then validates the member-log prefix that record
/// vouches for (length + CRC-32) and parses both. Transient read
/// failures retry under `retry`; exhaustion throws TransientIoError.
LoadResult LoadTrainerStateFromFile(const std::string& path,
                                    const RetryPolicy& retry = {});

/// Incremental checkpoint publisher for one training run. Two ideas
/// keep the per-iteration cost O(new member), not O(run so far):
///
///  - Both files are append-only: AppendMember stages just the newest
///    member's record (the running log CRC extends incrementally), and
///    each Publish appends one commit record to the manifest. Neither
///    already-published members nor older commit records are ever
///    rewritten, so per-iteration disk work is two positional writes —
///    no create+rename pair.
///  - All file I/O happens on a background thread, and Publish() never
///    blocks: it frames the
///    manifest on the calling thread and enqueues it. If the writer has
///    not started the previously queued checkpoint yet, the new one
///    *coalesces* with it — their log chunks are contiguous by
///    construction, and only the newest manifest matters — so a slow
///    disk (or a busy single-core box) costs at most one write per
///    writer latency, never one per iteration. Memory stays bounded by
///    the run's own log. The published checkpoint may therefore trail
///    the newest Publish by a few iterations; Drain() closes that gap
///    wherever durability is part of the contract. A failed publish
///    (retry exhaustion) is captured and rethrown from the *next*
///    Publish() or Drain() on the training thread, so Fit still
///    surfaces TransientIoError.
///
/// Crash safety: the completed manifest record is the commit point. A
/// crash after the log append but before the record completes leaves
/// extra log bytes no record vouches for plus (at most) a torn manifest
/// tail — the loader ignores both, and the next run's BeginLog
/// truncates them away.
///
/// Drain() blocks until the writer is idle — Fit calls it before an
/// armed crash point (the chaos contract says the kill fires after the
/// checkpoint is durable), before returning, and the destructor drains
/// too (dropping, not throwing, any pending error).
class AsyncCheckpointPublisher {
 public:
  explicit AsyncCheckpointPublisher(std::string checkpoint_path,
                                    RetryPolicy retry = {});
  ~AsyncCheckpointPublisher();
  AsyncCheckpointPublisher(const AsyncCheckpointPublisher&) = delete;
  AsyncCheckpointPublisher& operator=(const AsyncCheckpointPublisher&) = delete;

  /// Starts the run's log. Fresh start (`adopt_existing` false): stages
  /// records for the given bootstrap blob (if any) and members — the
  /// first Publish writes them from offset zero, truncating whatever
  /// stale log a previous run left. Resume (`adopt_existing` true): the
  /// same (bootstrap, members) bytes are already on disk — the loaded
  /// manifest vouched for them — so they are adopted as the committed
  /// prefix and the file is truncated to exactly that length, dropping
  /// any torn tail from the crash. `adopted_manifest_bytes` (the
  /// LoadResult field, meaningful only on resume) does the same for the
  /// manifest: commit records append after it, and a torn manifest tail
  /// is truncated away.
  void BeginLog(const std::string& bootstrap_blob,
                const std::vector<std::string>& member_blobs,
                bool adopt_existing, std::uint64_t adopted_manifest_bytes = 0);

  /// Stages the newest member's record; its bytes reach disk with the
  /// next Publish.
  void AppendMember(const std::string& blob);

  /// Publishes a checkpoint: staged log records, then a manifest built
  /// from `core` pinning the resulting log prefix. `core.bootstrap_blob`
  /// is ignored — the bootstrap record was staged by BeginLog.
  void Publish(const TrainerStateCore& core);

  void Drain();

 private:
  void Loop();

  const std::string manifest_path_;
  const std::string log_path_;
  const RetryPolicy retry_;
  // Bookkeeping (training thread only): bytes already handed to the
  // worker for each file, records staged since, and the running CRC.
  std::uint64_t committed_log_bytes_ = 0;
  std::uint64_t committed_manifest_bytes_ = 0;
  std::string staged_;
  std::uint32_t log_crc_ = 0;
  std::uint64_t log_bytes_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::string job_manifest_;
  std::uint64_t job_manifest_offset_ = 0;
  std::string job_chunk_;
  std::uint64_t job_offset_ = 0;
  bool has_job_ = false;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread worker_;
};

/// Order-dependent 64-bit hash mix (SplitMix64 round), used to build
/// the config/data fingerprints above.
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value);

/// Fingerprint of a dataset's exact contents: dimensions plus a 64-bit
/// word-fold over the raw feature and label bytes. Bit-exact by
/// construction — any change that could alter training invalidates the
/// checkpoint. (Only ever compared against itself, so the algorithm is
/// chosen for speed: it runs once per checkpointed Fit.)
std::uint64_t DatasetFingerprint(const DatasetView& data);

}  // namespace checkpoint
}  // namespace spe

#endif  // SPE_CHECKPOINT_CHECKPOINT_H_
