#include "spe/checkpoint/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "spe/common/crc32.h"
#include "spe/common/fault.h"
#include "spe/io/model_io.h"

namespace spe {
namespace checkpoint {
namespace {

constexpr const char* kMagic = "spe-checkpoint";
constexpr int kVersion = 1;

std::string FormatDouble(double value) {
  // %.17g round-trips doubles exactly (model_io.cc idiom) — best_auc
  // must come back bit-identical or a resumed early-stop run could pick
  // a different prefix than the uninterrupted one.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool Expect(std::istream& is, std::string_view keyword) {
  std::string token;
  is >> token;
  return !is.fail() && token == keyword;
}

// Byte-counted read so SaveClassifier blobs round-trip verbatim.
bool ReadCountedBytes(std::istream& is, std::size_t count, std::string* out) {
  if (is.get() != '\n') return false;  // the newline ending the count
  out->resize(count);
  is.read(out->data(), static_cast<std::streamsize>(count));
  return !is.fail();
}

// ---------------------------------------------------------------------
// Member log: a sequence of byte-counted records, `bootstrap` (at most
// one, first) then `member` per trained member in vote order. The log
// carries no integrity data of its own — the manifest CRCs the exact
// prefix it vouches for, and a torn tail past that prefix is ignored.
// ---------------------------------------------------------------------

void AppendRecord(std::string* out, const char* kind,
                  const std::string& blob) {
  char header[48];
  std::snprintf(header, sizeof(header), "%s %zu\n", kind, blob.size());
  *out += header;
  *out += blob;
}

std::string BuildMemberLog(const std::string& bootstrap_blob,
                           const std::vector<std::string>& member_blobs) {
  std::size_t total = bootstrap_blob.size() + 64;
  for (const std::string& blob : member_blobs) total += blob.size() + 32;
  std::string out;
  out.reserve(total);
  if (!bootstrap_blob.empty()) AppendRecord(&out, "bootstrap", bootstrap_blob);
  for (const std::string& blob : member_blobs) {
    AppendRecord(&out, "member", blob);
  }
  return out;
}

// Parses the log prefix the manifest vouched for. The CRC already
// matched, so a failure here means a writer/reader bug, not bit rot —
// but stay non-aborting and report it like any other corruption.
bool ParseMemberLog(const std::string& log, LoadResult* result) {
  std::istringstream is(log);
  bool first = true;
  while (static_cast<std::size_t>(is.tellg()) < log.size()) {
    std::string kind;
    std::size_t size = 0;
    if (!(is >> kind) || !(is >> size)) return false;
    std::string blob;
    if (!ReadCountedBytes(is, size, &blob)) return false;
    if (kind == "bootstrap") {
      if (!first || !result->core.bootstrap_blob.empty()) return false;
      result->core.bootstrap_blob = std::move(blob);
    } else if (kind == "member") {
      std::istringstream blob_in(blob);
      result->members.Add(LoadClassifier(blob_in));
    } else {
      return false;
    }
    first = false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Manifest: scalars, RNG state, early-stop state, and the (byte count,
// CRC-32) of the member-log prefix this checkpoint commits to.
// ---------------------------------------------------------------------

std::string SerializeManifest(const TrainerStateCore& core,
                              std::uint64_t log_bytes,
                              std::uint32_t log_crc) {
  std::ostringstream os;
  os << "spe-train-state 2\n";
  os << "config_fingerprint " << core.config_fingerprint
     << " data_fingerprint " << core.data_fingerprint << "\n";
  os << "n_estimators " << core.n_estimators << " include_bootstrap "
     << (core.include_bootstrap ? 1 : 0) << " next_iteration "
     << core.next_iteration << " prob_count " << core.prob_count << "\n";
  os << "rng " << core.rng_state << "\n";
  os << "validation " << (core.has_validation ? 1 : 0) << "\n";
  if (core.has_validation) {
    os << "best_auc " << FormatDouble(core.best_auc) << " best_size "
       << core.best_size << " scored_members " << core.scored_members << "\n";
  }
  char log_line[64];
  std::snprintf(log_line, sizeof(log_line), "log_bytes %llu log_crc %08x\n",
                static_cast<unsigned long long>(log_bytes), log_crc);
  os << log_line;
  return os.str();
}

// Parses the manifest payload; on success fills `core` (except the
// bootstrap blob, which lives in the log) and the log prefix pin.
void ParseManifest(const std::string& payload, LoadResult* result,
                   std::uint64_t* log_bytes, std::uint32_t* log_crc) {
  std::istringstream is(payload);
  TrainerStateCore& core = result->core;
  const auto fail = [result](const char* what) {
    result->error = std::string("checkpoint payload malformed: ") + what;
  };
  int version = 0;
  if (!Expect(is, "spe-train-state") || !(is >> version) || version != 2) {
    return fail("bad payload header");
  }
  int include_bootstrap = 0;
  if (!Expect(is, "config_fingerprint") || !(is >> core.config_fingerprint) ||
      !Expect(is, "data_fingerprint") || !(is >> core.data_fingerprint) ||
      !Expect(is, "n_estimators") || !(is >> core.n_estimators) ||
      !Expect(is, "include_bootstrap") || !(is >> include_bootstrap) ||
      !Expect(is, "next_iteration") || !(is >> core.next_iteration) ||
      !Expect(is, "prob_count") || !(is >> core.prob_count)) {
    return fail("bad scalar block");
  }
  core.include_bootstrap = include_bootstrap != 0;
  if (!Expect(is, "rng")) return fail("missing rng state");
  std::getline(is, core.rng_state);
  if (!core.rng_state.empty() && core.rng_state.front() == ' ') {
    core.rng_state.erase(0, 1);
  }
  if (core.rng_state.empty()) return fail("empty rng state");
  int has_validation = 0;
  if (!Expect(is, "validation") || !(is >> has_validation)) {
    return fail("bad validation flag");
  }
  core.has_validation = has_validation != 0;
  if (core.has_validation) {
    if (!Expect(is, "best_auc") || !(is >> core.best_auc) ||
        !Expect(is, "best_size") || !(is >> core.best_size) ||
        !Expect(is, "scored_members") || !(is >> core.scored_members)) {
      return fail("bad validation block");
    }
  }
  std::string crc_hex;
  if (!Expect(is, "log_bytes") || !(is >> *log_bytes) ||
      !Expect(is, "log_crc") || !(is >> crc_hex) || crc_hex.size() != 8) {
    return fail("bad member-log pin");
  }
  *log_crc = static_cast<std::uint32_t>(
      std::strtoul(crc_hex.c_str(), nullptr, 16));
}

std::vector<std::string> SerializeMembers(const VotingEnsemble& members) {
  std::vector<std::string> blobs;
  blobs.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::ostringstream os;
    SaveClassifier(members.member(i), os);
    blobs.push_back(os.str());
  }
  return blobs;
}

std::string EnvelopeHeader(const std::string& payload) {
  char header[80];
  std::snprintf(header, sizeof(header), "%s %d payload_bytes %zu crc32 %08x\n",
                kMagic, kVersion, payload.size(), Crc32(payload));
  return header;
}

// Replace a file wholesale via sibling tmp + rename(2): the rename is
// atomic, so the path always holds either the complete old or the
// complete new bytes.
void ReplaceFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
    if (!os.good()) throw TransientIoError("cannot write " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os.good()) throw TransientIoError("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw TransientIoError("cannot write " + path + " (rename failed)");
  }
}

// Positional in-place write at `offset`, which makes a retried attempt
// idempotent and can only disturb bytes past the prefix earlier commit
// records vouch for.
void WriteAt(const std::string& path, const std::string& bytes,
             std::uint64_t offset) {
  std::fstream os(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!os.good()) throw TransientIoError("cannot open " + path);
  os.seekp(static_cast<std::streamoff>(offset));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os.good()) throw TransientIoError("cannot write " + path);
}

// One checkpoint publish: land `log_chunk` in the member log, then the
// manifest commit record — the completed record is the commit point, so
// a crash at any instant leaves the previous (record, log-prefix) pair
// fully intact. Offset-zero writes replace the whole file via tmp +
// rename (a stale file from an older run must not survive into a new
// run's history); later writes land in place at their offset — on a
// crash they leave at most a torn tail past the previously committed
// prefix, which the loader ignores.
void PublishToDisk(const std::string& manifest_record,
                   std::uint64_t manifest_offset,
                   const std::string& manifest_path,
                   const std::string& log_chunk, std::uint64_t log_offset,
                   const RetryPolicy& retry) {
  const std::string log_path = MemberLogPath(manifest_path);
  RetryWithBackoff(retry, "checkpoint write " + manifest_path, [&] {
    if (Faults().ShouldFailArtifactWrite()) {
      throw TransientIoError(
          "injected fault: transient checkpoint write failed for " +
              manifest_path,
          /*injected=*/true);
    }
    if (log_offset == 0) {
      ReplaceFile(log_path, log_chunk);
    } else if (!log_chunk.empty()) {
      WriteAt(log_path, log_chunk, log_offset);
    }
    if (manifest_offset == 0) {
      ReplaceFile(manifest_path, manifest_record);
    } else {
      WriteAt(manifest_path, manifest_record, manifest_offset);
    }
  });
}

}  // namespace

std::string CheckpointPath(const std::string& directory) {
  return directory + "/spe_train.ckpt";
}

std::string MemberLogPath(const std::string& checkpoint_path) {
  return checkpoint_path + ".members";
}

void SaveTrainerStateToFile(const TrainerStateCore& core,
                            const VotingEnsemble& members,
                            const std::string& path,
                            const RetryPolicy& retry) {
  SaveTrainerStateToFile(core, SerializeMembers(members), path, retry);
}

void SaveTrainerStateToFile(const TrainerStateCore& core,
                            const std::vector<std::string>& member_blobs,
                            const std::string& path,
                            const RetryPolicy& retry) {
  // Serialize once; only the writes are retried.
  const std::string log = BuildMemberLog(core.bootstrap_blob, member_blobs);
  const std::string payload =
      SerializeManifest(core, log.size(), Crc32(log));
  PublishToDisk(EnvelopeHeader(payload) + payload, /*manifest_offset=*/0,
                path, log, /*log_offset=*/0, retry);
}

AsyncCheckpointPublisher::AsyncCheckpointPublisher(std::string checkpoint_path,
                                                   RetryPolicy retry)
    : manifest_path_(std::move(checkpoint_path)),
      log_path_(MemberLogPath(manifest_path_)),
      retry_(retry) {}

AsyncCheckpointPublisher::~AsyncCheckpointPublisher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();  // finishes any in-flight job
  if (error_ != nullptr) {
    std::fprintf(stderr,
                 "[spe] a checkpoint publish failed and the error was never "
                 "collected; the on-disk checkpoint may be stale\n");
  }
}

void AsyncCheckpointPublisher::BeginLog(
    const std::string& bootstrap_blob,
    const std::vector<std::string>& member_blobs, bool adopt_existing,
    std::uint64_t adopted_manifest_bytes) {
  const std::string records = BuildMemberLog(bootstrap_blob, member_blobs);
  log_crc_ = Crc32(records);
  log_bytes_ = records.size();
  if (adopt_existing) {
    // These exact bytes are already on disk — the loaded manifest CRC'd
    // them — as is the manifest record prefix the load settled on. Drop
    // any torn tail the crash left past either; harmless if it fails
    // (the newest valid record bounds what the loader may read).
    committed_log_bytes_ = log_bytes_;
    committed_manifest_bytes_ = adopted_manifest_bytes;
    staged_.clear();
    std::error_code ec;
    std::filesystem::resize_file(log_path_, log_bytes_, ec);
    std::filesystem::resize_file(manifest_path_, adopted_manifest_bytes, ec);
  } else {
    committed_log_bytes_ = 0;
    committed_manifest_bytes_ = 0;
    staged_ = records;
  }
}

void AsyncCheckpointPublisher::AppendMember(const std::string& blob) {
  const std::size_t before = staged_.size();
  AppendRecord(&staged_, "member", blob);
  log_crc_ = Crc32Update(
      log_crc_, std::string_view(staged_).substr(before));
  log_bytes_ += staged_.size() - before;
}

void AsyncCheckpointPublisher::Publish(const TrainerStateCore& core) {
  const std::string payload = SerializeManifest(core, log_bytes_, log_crc_);
  std::string manifest = EnvelopeHeader(payload) + payload;
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!worker_.joinable()) {
      worker_ = std::thread(&AsyncCheckpointPublisher::Loop, this);
    }
    pending = error_;
    error_ = nullptr;
    if (pending == nullptr) {
      if (has_job_) {
        // Coalesce: the queued-but-unstarted checkpoint is superseded by
        // this one. Its chunk covers [job_offset_, old committed) and
        // the new staging covers [old committed, log_bytes_), so the
        // concatenation is one contiguous chunk — and the superseded
        // commit record is simply never written; this one lands at its
        // offset instead. Publish therefore never blocks the training
        // thread; durability points go through Drain().
        job_chunk_ += staged_;
      } else {
        job_manifest_offset_ = committed_manifest_bytes_;
        job_chunk_ = std::move(staged_);
        job_offset_ = committed_log_bytes_;
        has_job_ = true;
      }
      committed_manifest_bytes_ = job_manifest_offset_ + manifest.size();
      job_manifest_ = std::move(manifest);
      staged_.clear();
      committed_log_bytes_ = log_bytes_;
    }
  }
  cv_.notify_all();
  if (pending != nullptr) std::rethrow_exception(pending);
}

void AsyncCheckpointPublisher::Drain() {
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return !has_job_ && !busy_; });
    pending = error_;
    error_ = nullptr;
  }
  if (pending != nullptr) std::rethrow_exception(pending);
}

void AsyncCheckpointPublisher::Loop() {
  for (;;) {
    std::string manifest;
    std::uint64_t manifest_offset = 0;
    std::string chunk;
    std::uint64_t offset = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return has_job_ || stop_; });
      if (!has_job_) return;  // stop requested with nothing pending
      manifest = std::move(job_manifest_);
      manifest_offset = job_manifest_offset_;
      chunk = std::move(job_chunk_);
      offset = job_offset_;
      has_job_ = false;
      busy_ = true;
    }
    std::exception_ptr err;
    try {
      PublishToDisk(manifest, manifest_offset, manifest_path_, chunk, offset,
                    retry_);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      if (err != nullptr && error_ == nullptr) error_ = err;
    }
    cv_.notify_all();
  }
}

LoadResult LoadTrainerStateFromFile(const std::string& path,
                                    const RetryPolicy& retry) {
  LoadResult result;
  bool absent = false;
  const auto read_file = [&](const std::string& p) -> std::string {
    return RetryWithBackoff(retry, "checkpoint read " + p,
                            [&]() -> std::string {
      if (Faults().ShouldFailArtifactRead()) {
        throw TransientIoError(
            "injected fault: transient checkpoint read failed for " + p,
            /*injected=*/true);
      }
      std::ifstream is(p, std::ios::binary);
      if (!is.good()) {
        absent = true;
        return std::string();
      }
      absent = false;
      std::ostringstream buf;
      buf << is.rdbuf();
      if (is.bad()) throw TransientIoError("cannot read " + p);
      return buf.str();
    });
  };
  const std::string content = read_file(path);
  if (absent) {
    result.missing = true;
    result.error = "cannot open " + path;
    return result;
  }
  // Scan the manifest's commit records and settle on the newest complete
  // valid one. A record cut short by end-of-file is a torn append from a
  // crash — normal; fall back to the record before it. Anything else
  // wrong (bad magic, malformed header, CRC mismatch on a complete
  // payload) cannot come from a torn append, because crashed appends
  // only ever leave prefixes — refuse it as corruption instead of
  // silently resuming older state.
  std::string last_payload;
  bool any_valid = false;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn header line at the tail
    std::istringstream header(content.substr(pos, nl - pos));
    std::string magic;
    int version = 0;
    std::size_t payload_bytes = 0;
    std::string crc_hex;
    if (!(header >> magic) || magic != kMagic) {
      result.error =
          any_valid
              ? "checkpoint corrupted: malformed record after a valid "
                "checkpoint"
              : "checkpoint has bad magic (not an spe-checkpoint file)";
      return result;
    }
    if (!(header >> version) || version != kVersion ||
        !Expect(header, "payload_bytes") || !(header >> payload_bytes) ||
        !Expect(header, "crc32") || !(header >> crc_hex)) {
      result.error = any_valid
                         ? "checkpoint corrupted: malformed record after a "
                           "valid checkpoint"
                         : "checkpoint header malformed";
      return result;
    }
    const std::size_t payload_start = nl + 1;
    if (content.size() < payload_start + payload_bytes) break;  // torn append
    const std::string payload = content.substr(payload_start, payload_bytes);
    char expected_hex[16];
    std::snprintf(expected_hex, sizeof(expected_hex), "%08x", Crc32(payload));
    if (crc_hex != expected_hex) {
      result.error = "checkpoint corrupted: crc32 mismatch";
      return result;
    }
    last_payload = payload;
    any_valid = true;
    pos = payload_start + payload_bytes;
    result.manifest_bytes = pos;
  }
  if (!any_valid) {
    result.error = content.empty()
                       ? "checkpoint has bad magic (not an spe-checkpoint file)"
                       : "checkpoint truncated: payload shorter than advertised";
    return result;
  }
  std::uint64_t log_bytes = 0;
  std::uint32_t log_crc = 0;
  ParseManifest(last_payload, &result, &log_bytes, &log_crc);
  if (!result.error.empty()) return result;

  std::string log = read_file(MemberLogPath(path));
  if (absent) {
    if (log_bytes == 0) return result;  // empty log was never written
    result.error = "checkpoint member log is missing";
    return result;
  }
  if (log.size() < log_bytes) {
    result.error =
        "checkpoint member log truncated: shorter than the manifest vouches "
        "for";
    return result;
  }
  log.resize(log_bytes);  // a torn tail past the vouched prefix is normal
  if (Crc32(log) != log_crc) {
    result.error = "checkpoint member log corrupted: crc32 mismatch";
    return result;
  }
  if (!ParseMemberLog(log, &result)) {
    result.error = "checkpoint payload malformed: bad member log record";
  }
  return result;
}

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  // SplitMix64 finalizer over (seed, value): cheap, order-dependent,
  // and well-mixed — fingerprints only need to make collisions between
  // *related* configs (one field nudged) vanishingly unlikely.
  value += 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return seed ^ (value ^ (value >> 31));
}

namespace {

// Order-sensitive 64-bit fold over raw bytes: xor-multiply per 8-byte
// word, length-tagged tail. Runs at memory speed, unlike the table-walk
// CRC kernel — this is on the hot path of every checkpointed Fit, and
// the fingerprint only ever compares against itself, so collision
// resistance (not error-model guarantees) is what matters.
std::uint64_t FoldBytes(std::uint64_t h, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  const char* const end = p + size;
  std::uint64_t w = 0;
  for (; p + sizeof(w) <= end; p += sizeof(w)) {
    std::memcpy(&w, p, sizeof(w));
    h = (h ^ w) * 0x9e3779b97f4a7c15ull;
  }
  w = 0;
  if (p < end) std::memcpy(&w, p, static_cast<std::size_t>(end - p));
  return HashCombine(h ^ size, w);
}

}  // namespace

std::uint64_t DatasetFingerprint(const DatasetView& data) {
  data.CheckAlive();
  std::uint64_t h = HashCombine(0x7370652d64617461ull, data.num_rows());
  h = HashCombine(h, data.num_features());
  if (data.num_rows() > 0) {
    // Columnar fold: identity views hash each feature's contiguous
    // slice directly; indexed and row-major views gather the column
    // into scratch first so equal contents hash equal regardless of
    // the view's mode.
    const DataMatrix* parent = data.identity() ? data.parent() : nullptr;
    std::vector<double> col_scratch;
    for (std::size_t j = 0; j < data.num_features(); ++j) {
      if (parent != nullptr) {
        const std::span<const double> col = parent->Column(j);
        h = FoldBytes(h, col.data(), col.size_bytes());
      } else {
        col_scratch.resize(data.num_rows());
        for (std::size_t i = 0; i < data.num_rows(); ++i) {
          col_scratch[i] = data.At(i, j);
        }
        h = FoldBytes(h, col_scratch.data(),
                      col_scratch.size() * sizeof(double));
      }
    }
  }
  const std::vector<int> labels = data.LabelsVector();
  h = FoldBytes(h, labels.data(), labels.size() * sizeof(int));
  return h;
}

}  // namespace checkpoint
}  // namespace spe
