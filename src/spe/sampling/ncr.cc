#include "spe/sampling/ncr.h"

#include <vector>

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"

namespace spe {

NcrSampler::NcrSampler(std::size_t k) : k_(k) { SPE_CHECK_GT(k, 0u); }

bool NcrSampler::SelectIndices(const Dataset& data, Rng& /*rng*/,
                               std::vector<std::size_t>* keep) const {
  const NeighborIndex index(data);
  const std::vector<std::vector<std::size_t>> neighbors = index.AllNearest(k_);

  std::vector<char> drop(data.num_rows(), 0);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    std::size_t minority_votes = 0;
    for (std::size_t j : neighbors[i]) {
      minority_votes += static_cast<std::size_t>(index.LabelOf(j) == 1);
    }
    const bool votes_minority = 2 * minority_votes > neighbors[i].size();
    if (index.LabelOf(i) == 0) {
      // Step 1: majority sample out-voted by minority neighbours.
      if (votes_minority) drop[i] = 1;
    } else if (!votes_minority) {
      // Step 2: misclassified minority sample — remove the offending
      // majority neighbours instead of the minority sample itself.
      for (std::size_t j : neighbors[i]) {
        if (index.LabelOf(j) == 0) drop[j] = 1;
      }
    }
  }

  keep->clear();
  keep->reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (!drop[i]) keep->push_back(i);
  }
  return true;
}

Dataset NcrSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
