#ifndef SPE_SAMPLING_NEAR_MISS_H_
#define SPE_SAMPLING_NEAR_MISS_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// NearMiss-1 (Mani & Zhang, 2003): keeps the |P| majority samples whose
/// mean distance to their `k` nearest *minority* samples is smallest —
/// i.e. the majority points pressed right up against the minority class.
class NearMissSampler final : public Sampler {
 public:
  explicit NearMissSampler(std::size_t k = 3);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "NearMiss"; }

 private:
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_NEAR_MISS_H_
