#ifndef SPE_SAMPLING_CONDENSED_NN_H_
#define SPE_SAMPLING_CONDENSED_NN_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// CNN (Condensed Nearest Neighbour, Hart 1968 — the method Tomek's
/// "two modifications of CNN" [paper ref 12] builds on): grows a
/// consistent subset. Starting from all minority samples plus one random
/// majority sample, every remaining majority sample is presented in
/// random order and added only if the current subset's 1-NN rule
/// misclassifies it. Keeps boundary samples, discards interior ones.
class CondensedNnSampler final : public Sampler {
 public:
  CondensedNnSampler() = default;

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "CNN"; }
};

}  // namespace spe

#endif  // SPE_SAMPLING_CONDENSED_NN_H_
