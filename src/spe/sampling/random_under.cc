#include "spe/sampling/random_under.h"

#include <algorithm>

#include "spe/common/check.h"

namespace spe {

RandomUnderSampler::RandomUnderSampler(double ratio) : ratio_(ratio) {
  SPE_CHECK_GT(ratio, 0.0);
}

bool RandomUnderSampler::SelectIndices(const Dataset& data, Rng& rng,
                                       std::vector<std::size_t>* keep) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());

  const auto target = std::min(
      neg.size(), static_cast<std::size_t>(
                      ratio_ * static_cast<double>(pos.size()) + 0.5));
  *keep = pos;
  for (std::size_t i : rng.SampleWithoutReplacement(neg.size(), target)) {
    keep->push_back(neg[i]);
  }
  rng.Shuffle(*keep);
  return true;
}

Dataset RandomUnderSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
