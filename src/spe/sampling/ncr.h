#ifndef SPE_SAMPLING_NCR_H_
#define SPE_SAMPLING_NCR_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// NCR (Neighbourhood Cleaning Rule, Laurikkala 2001) — the method the
/// paper's tables call "Clean". Two cleaning steps over a k-NN graph:
///  1. Wilson editing of the majority class (drop majority samples whose
///     neighbourhood out-votes them).
///  2. For every minority sample misclassified by its k neighbours, drop
///     the majority samples among those neighbours.
/// Note the output is *not* balanced — only cleaned — which is why the
/// paper observes "Clean + MLP" collapsing (§VI-B.2).
class NcrSampler final : public Sampler {
 public:
  explicit NcrSampler(std::size_t k = 3);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "Clean"; }

 private:
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_NCR_H_
