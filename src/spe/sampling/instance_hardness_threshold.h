#ifndef SPE_SAMPLING_INSTANCE_HARDNESS_THRESHOLD_H_
#define SPE_SAMPLING_INSTANCE_HARDNESS_THRESHOLD_H_

#include <memory>
#include <string>

#include "spe/classifiers/classifier.h"
#include "spe/sampling/sampler.h"

namespace spe {

/// Instance-Hardness-Threshold under-sampling (Smith et al., 2014): fit
/// a probe classifier with cross-validation, score every majority sample
/// by its out-of-fold hardness (1 - predicted own-class probability),
/// and drop the hardest majority samples until the classes balance.
///
/// This is the *static, single-shot* ancestor of SPE's idea — hardness
/// estimated once by one model, hard samples simply discarded — and
/// therefore the natural ablation baseline isolating what SPE's
/// iterative, self-paced, keep-a-skeleton strategy adds. Unlike the
/// k-NN-based cleaners it needs no distance metric, so it works on
/// categorical data.
class InstanceHardnessThresholdSampler final : public Sampler {
 public:
  /// `probe` scores the hardness (default: a depth-5 decision tree);
  /// `folds` controls the out-of-fold estimation.
  explicit InstanceHardnessThresholdSampler(
      std::unique_ptr<Classifier> probe = nullptr, std::size_t folds = 3);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  std::string Name() const override { return "IHT"; }

 private:
  std::unique_ptr<Classifier> probe_;
  std::size_t folds_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_INSTANCE_HARDNESS_THRESHOLD_H_
