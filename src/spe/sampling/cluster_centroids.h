#ifndef SPE_SAMPLING_CLUSTER_CENTROIDS_H_
#define SPE_SAMPLING_CLUSTER_CENTROIDS_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// ClusterCentroids under-sampling: replaces the majority class with the
/// |P| centroids of a k-means clustering over it — a prototype-based
/// summary instead of a random subset, preserving the majority manifold
/// with far fewer points. Synthetic rows (the centroids) carry label 0.
class ClusterCentroidsSampler final : public Sampler {
 public:
  ClusterCentroidsSampler() = default;

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "ClusterCentroids"; }
};

}  // namespace spe

#endif  // SPE_SAMPLING_CLUSTER_CENTROIDS_H_
