#ifndef SPE_SAMPLING_KMEANS_SMOTE_H_
#define SPE_SAMPLING_KMEANS_SMOTE_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// KMeansSMOTE (Douzas et al., 2018, simplified): cluster the minority
/// class first, then run SMOTE *within* each cluster, allocating
/// synthetic counts proportionally to cluster size. Interpolation never
/// crosses clusters, which removes plain SMOTE's worst failure on
/// multi-cluster minorities — the between-cluster bridges that smear the
/// checkerboard in Fig. 6.
class KMeansSmoteSampler final : public Sampler {
 public:
  /// `clusters` caps the minority cluster count (the effective number
  /// also respects the minority size); `k` is the within-cluster SMOTE
  /// neighbourhood.
  explicit KMeansSmoteSampler(std::size_t clusters = 8, std::size_t k = 5);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "KMeansSMOTE"; }

 private:
  std::size_t clusters_;
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_KMEANS_SMOTE_H_
