#include "spe/sampling/sampler_factory.h"

#include "spe/common/check.h"
#include "spe/sampling/adasyn.h"
#include "spe/sampling/all_knn.h"
#include "spe/sampling/borderline_smote.h"
#include "spe/sampling/cluster_centroids.h"
#include "spe/sampling/condensed_nn.h"
#include "spe/sampling/enn.h"
#include "spe/sampling/instance_hardness_threshold.h"
#include "spe/sampling/kmeans_smote.h"
#include "spe/sampling/near_miss.h"
#include "spe/sampling/ncr.h"
#include "spe/sampling/one_side_selection.h"
#include "spe/sampling/random_over.h"
#include "spe/sampling/random_under.h"
#include "spe/sampling/smote.h"
#include "spe/sampling/smote_enn.h"
#include "spe/sampling/smote_tomek.h"
#include "spe/sampling/tomek_links.h"

namespace spe {

Sampler::~Sampler() = default;

std::unique_ptr<Sampler> MakeSampler(const std::string& name) {
  if (name == "RandUnder") return std::make_unique<RandomUnderSampler>();
  if (name == "NearMiss") return std::make_unique<NearMissSampler>();
  if (name == "Clean") return std::make_unique<NcrSampler>();
  if (name == "ENN") return std::make_unique<EnnSampler>();
  if (name == "TomekLink") return std::make_unique<TomekLinksSampler>();
  if (name == "AllKNN") return std::make_unique<AllKnnSampler>();
  if (name == "OSS") return std::make_unique<OneSideSelectionSampler>();
  if (name == "RandOver") return std::make_unique<RandomOverSampler>();
  if (name == "SMOTE") return std::make_unique<SmoteSampler>();
  if (name == "ADASYN") return std::make_unique<AdasynSampler>();
  if (name == "BorderSMOTE") return std::make_unique<BorderlineSmoteSampler>();
  if (name == "SMOTEENN") return std::make_unique<SmoteEnnSampler>();
  if (name == "SMOTETomek") return std::make_unique<SmoteTomekSampler>();
  // Extensions beyond the paper's Table V (see DESIGN.md §4).
  if (name == "CNN") return std::make_unique<CondensedNnSampler>();
  if (name == "IHT") return std::make_unique<InstanceHardnessThresholdSampler>();
  if (name == "ClusterCentroids") return std::make_unique<ClusterCentroidsSampler>();
  if (name == "KMeansSMOTE") return std::make_unique<KMeansSmoteSampler>();
  SPE_CHECK(false) << "unknown sampler name: " << name;
  return nullptr;  // unreachable
}

std::vector<std::string> KnownSamplerNames() {
  return {"RandUnder", "NearMiss",    "Clean",    "ENN",        "TomekLink",
          "AllKNN",    "OSS",         "RandOver", "SMOTE",      "ADASYN",
          "BorderSMOTE", "SMOTEENN", "SMOTETomek",
          // Extensions beyond the paper's Table V rows:
          "CNN", "IHT", "ClusterCentroids", "KMeansSMOTE"};
}

}  // namespace spe
