#include "spe/sampling/kmeans_smote.h"

#include <algorithm>
#include <vector>

#include "spe/cluster/kmeans.h"
#include "spe/common/check.h"
#include "spe/sampling/smote.h"

namespace spe {

KMeansSmoteSampler::KMeansSmoteSampler(std::size_t clusters, std::size_t k)
    : clusters_(clusters), k_(k) {
  SPE_CHECK_GT(clusters, 0u);
  SPE_CHECK_GT(k, 0u);
}

Dataset KMeansSmoteSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::size_t num_neg = data.NegativeIndices().size();
  if (pos.size() >= num_neg || pos.size() < 2) return data;
  const std::size_t needed = num_neg - pos.size();

  // Cluster the minority class; keep clusters small enough that each
  // still holds a SMOTE neighbourhood.
  KMeansConfig config;
  config.num_clusters =
      std::min(clusters_, std::max<std::size_t>(1, pos.size() / (k_ + 1)));
  config.seed = rng.engine()();
  KMeans kmeans(config);
  const Dataset minority = data.Subset(pos);
  kmeans.Fit(minority);

  // Minority membership per cluster.
  std::vector<std::vector<std::size_t>> members(kmeans.num_clusters());
  for (std::size_t m = 0; m < minority.num_rows(); ++m) {
    members[kmeans.assignments()[m]].push_back(m);
  }

  // Synthetic quota proportional to cluster size; clusters of one sample
  // cannot interpolate and are skipped (their quota flows to the others
  // via the remainder loop).
  std::vector<std::size_t> eligible;
  std::size_t eligible_population = 0;
  for (std::size_t c = 0; c < members.size(); ++c) {
    if (members[c].size() >= 2) {
      eligible.push_back(c);
      eligible_population += members[c].size();
    }
  }
  if (eligible.empty()) return data;  // every cluster degenerate

  Dataset out = data;
  out.Reserve(data.num_rows() + needed);
  std::size_t produced = 0;
  for (std::size_t e = 0; e < eligible.size(); ++e) {
    const auto& cluster = members[eligible[e]];
    const std::size_t quota =
        e + 1 == eligible.size()
            ? needed - produced  // last cluster absorbs rounding
            : needed * cluster.size() / eligible_population;
    if (quota == 0) continue;
    produced += quota;

    // Within-cluster SMOTE: the neighbourhood index sees only this
    // cluster's samples.
    const Dataset cluster_data = minority.Subset(cluster);
    std::vector<std::size_t> seeds(cluster_data.num_rows());
    std::vector<std::size_t> counts(cluster_data.num_rows(),
                                    quota / cluster_data.num_rows());
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
    for (std::size_t i = 0; i < quota % cluster_data.num_rows(); ++i) {
      ++counts[i];
    }
    const Dataset augmented = WithSyntheticMinority(
        cluster_data, seeds, counts, std::min(k_, cluster.size() - 1), rng);
    std::vector<double> row(augmented.num_features());
    for (std::size_t i = cluster_data.num_rows(); i < augmented.num_rows();
         ++i) {
      augmented.CopyRowTo(i, row);
      out.AddRow(row, 1);
    }
  }
  return out;
}

}  // namespace spe
