#ifndef SPE_SAMPLING_BORDERLINE_SMOTE_H_
#define SPE_SAMPLING_BORDERLINE_SMOTE_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// BorderSMOTE (Borderline-SMOTE-1, Han et al., 2005): only minority
/// samples "in danger" — at least half but not all of their k neighbours
/// are majority — seed the synthesis. Noise samples (all-majority
/// neighbourhoods) and safe samples seed nothing.
class BorderlineSmoteSampler final : public Sampler {
 public:
  explicit BorderlineSmoteSampler(std::size_t k = 5);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "BorderSMOTE"; }

 private:
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_BORDERLINE_SMOTE_H_
