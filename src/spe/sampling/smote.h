#ifndef SPE_SAMPLING_SMOTE_H_
#define SPE_SAMPLING_SMOTE_H_

#include <span>
#include <string>
#include <vector>

#include "spe/sampling/sampler.h"

namespace spe {

/// Core SMOTE synthesis, shared by SMOTE / BorderSMOTE / ADASYN and the
/// hybrid samplers. Appends, for each seeds[s], counts[s] synthetic
/// minority rows obtained by interpolating the seed toward a uniformly
/// chosen one of its `k` nearest minority neighbours:
///   x_new = x_seed + u * (x_neighbor - x_seed),  u ~ U[0, 1).
/// Neighbour search runs in standardized space; interpolation in raw
/// feature space. Seeds are row indices into `data` and must be minority.
Dataset WithSyntheticMinority(const DatasetView& data,
                              std::span<const std::size_t> seeds,
                              std::span<const std::size_t> counts, std::size_t k,
                              Rng& rng);

/// SMOTE (Chawla et al., 2002): synthesizes |N| - |P| minority samples,
/// spread evenly over all minority seeds, until the classes balance.
class SmoteSampler final : public Sampler {
 public:
  explicit SmoteSampler(std::size_t k = 5);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "SMOTE"; }

 private:
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_SMOTE_H_
