#include "spe/sampling/enn.h"

#include "spe/common/check.h"

namespace spe {

std::vector<std::size_t> EnnKeptIndices(const NeighborIndex& index, std::size_t k,
                                        bool majority_only) {
  const std::vector<std::vector<std::size_t>> neighbors = index.AllNearest(k);
  std::vector<std::size_t> kept;
  kept.reserve(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    const int label = index.LabelOf(i);
    if (majority_only && label == 1) {
      kept.push_back(i);
      continue;
    }
    std::size_t agreeing = 0;
    for (std::size_t j : neighbors[i]) {
      agreeing += static_cast<std::size_t>(index.LabelOf(j) == label);
    }
    // Keep when at least half the neighbourhood agrees with the label.
    if (2 * agreeing >= neighbors[i].size()) kept.push_back(i);
  }
  return kept;
}

EnnSampler::EnnSampler(std::size_t k, bool majority_only)
    : k_(k), majority_only_(majority_only) {
  SPE_CHECK_GT(k, 0u);
}

bool EnnSampler::SelectIndices(const Dataset& data, Rng& /*rng*/,
                               std::vector<std::size_t>* keep) const {
  const NeighborIndex index(data);
  *keep = EnnKeptIndices(index, k_, majority_only_);
  return true;
}

Dataset EnnSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
