#include "spe/sampling/random_over.h"

#include "spe/common/check.h"

namespace spe {

RandomOverSampler::RandomOverSampler(double ratio) : ratio_(ratio) {
  SPE_CHECK_GT(ratio, 0.0);
}

Dataset RandomOverSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());

  const auto target =
      static_cast<std::size_t>(ratio_ * static_cast<double>(neg.size()) + 0.5);
  Dataset out = data;
  out.Reserve(data.num_rows() + (target > pos.size() ? target - pos.size() : 0));
  std::vector<double> row(data.num_features());
  for (std::size_t extra = pos.size(); extra < target; ++extra) {
    const std::size_t source = pos[rng.Index(pos.size())];
    data.CopyRowTo(source, row);
    out.AddRow(row, 1);
  }
  return out;
}

}  // namespace spe
