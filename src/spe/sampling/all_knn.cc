#include "spe/sampling/all_knn.h"

#include <numeric>
#include <utility>

#include "spe/common/check.h"
#include "spe/sampling/enn.h"
#include "spe/sampling/neighbors.h"

namespace spe {

AllKnnSampler::AllKnnSampler(std::size_t max_k) : max_k_(max_k) {
  SPE_CHECK_GT(max_k, 0u);
}

bool AllKnnSampler::SelectIndices(const Dataset& data, Rng& /*rng*/,
                                  std::vector<std::size_t>* keep) const {
  // Survivors tracked as absolute row indices; each editing round builds
  // its neighbour index over a view of them, so no intermediate copy of
  // the surviving set is ever materialized.
  std::vector<std::size_t> survivors(data.num_rows());
  std::iota(survivors.begin(), survivors.end(), std::size_t{0});
  for (std::size_t k = 1; k <= max_k_; ++k) {
    const DatasetView view(data, survivors);
    const NeighborIndex index(view);
    const std::vector<std::size_t> kept =
        EnnKeptIndices(index, k, /*majority_only=*/true);
    if (kept.size() == survivors.size()) continue;  // nothing removed
    std::vector<std::size_t> next;
    next.reserve(kept.size());
    for (std::size_t i : kept) next.push_back(survivors[i]);
    survivors = std::move(next);
    // Stop if the majority class would vanish entirely.
    if (DatasetView(data, survivors).CountNegatives() == 0) break;
  }
  *keep = std::move(survivors);
  return true;
}

Dataset AllKnnSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
