#include "spe/sampling/all_knn.h"

#include "spe/common/check.h"
#include "spe/sampling/enn.h"
#include "spe/sampling/neighbors.h"

namespace spe {

AllKnnSampler::AllKnnSampler(std::size_t max_k) : max_k_(max_k) {
  SPE_CHECK_GT(max_k, 0u);
}

Dataset AllKnnSampler::Resample(const Dataset& data, Rng& /*rng*/) const {
  Dataset current = data;
  for (std::size_t k = 1; k <= max_k_; ++k) {
    const NeighborIndex index(current);
    const std::vector<std::size_t> kept =
        EnnKeptIndices(index, k, /*majority_only=*/true);
    if (kept.size() == current.num_rows()) continue;  // nothing removed
    current = current.Subset(kept);
    // Stop if the majority class would vanish entirely.
    if (current.CountNegatives() == 0) break;
  }
  return current;
}

}  // namespace spe
