#ifndef SPE_SAMPLING_ADASYN_H_
#define SPE_SAMPLING_ADASYN_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// ADASYN (He et al., 2008): like SMOTE, but the number of synthetic
/// samples seeded at each minority point is proportional to the fraction
/// of majority samples among its k nearest neighbours — synthesis
/// concentrates where the minority class is hardest to learn.
class AdasynSampler final : public Sampler {
 public:
  explicit AdasynSampler(std::size_t k = 5);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "ADASYN"; }

 private:
  std::size_t k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_ADASYN_H_
