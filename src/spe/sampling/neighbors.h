#ifndef SPE_SAMPLING_NEIGHBORS_H_
#define SPE_SAMPLING_NEIGHBORS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "spe/data/dataset.h"

namespace spe {

/// Brute-force Euclidean nearest-neighbour index over a standardized copy
/// of a dataset. Shared by every distance-based re-sampler (NearMiss,
/// ENN, Tomek links, SMOTE, ...).
///
/// Deliberately O(n^2): the library reproduces the paper's argument that
/// distance-based re-sampling is computationally infeasible on massive
/// data, and the Table V timing bench measures exactly this cost.
class NeighborIndex {
 public:
  /// Builds the index. Aborts on categorical features — Euclidean
  /// distance over category codes is meaningless, which is the paper's
  /// "no appropriate distance metric" case.
  explicit NeighborIndex(const DatasetView& data);

  std::size_t size() const { return rows_.num_rows(); }
  int LabelOf(std::size_t row) const { return labels_[row]; }

  /// Euclidean distance between two indexed rows (standardized space).
  double Distance(std::size_t a, std::size_t b) const;

  /// Indices of the k nearest rows to `query` (an indexed row), self
  /// excluded, ascending by distance. Returns fewer when k >= size().
  std::vector<std::size_t> Nearest(std::size_t query, std::size_t k) const;

  /// k nearest to `query` restricted to `candidates` (self excluded if
  /// present).
  std::vector<std::size_t> NearestAmong(std::size_t query,
                                        std::span<const std::size_t> candidates,
                                        std::size_t k) const;

  /// Nearest(k) for every row, computed in parallel. The workhorse of
  /// ENN / AllKNN / NCR / SMOTE-family methods.
  std::vector<std::vector<std::size_t>> AllNearest(std::size_t k) const;

 private:
  RowMatrix rows_;           // standardized rows (scratch, not a Dataset)
  std::vector<int> labels_;  // labels parallel to rows_
};

}  // namespace spe

#endif  // SPE_SAMPLING_NEIGHBORS_H_
