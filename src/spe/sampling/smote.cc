#include "spe/sampling/smote.h"

#include <unordered_map>

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"

namespace spe {

Dataset WithSyntheticMinority(const DatasetView& data,
                              std::span<const std::size_t> seeds,
                              std::span<const std::size_t> counts, std::size_t k,
                              Rng& rng) {
  data.CheckAlive();
  SPE_CHECK_EQ(seeds.size(), counts.size());
  const std::vector<std::size_t> pos = data.PositiveIndices();
  SPE_CHECK_GT(pos.size(), 1u) << "SMOTE needs at least two minority samples";

  // Neighbour structure over the minority class only: gather the raw
  // minority rows once (this is also the interpolation space) and index
  // a row-major view over them.
  const std::size_t d = data.num_features();
  std::vector<FeatureKind> kinds(d);
  for (std::size_t j = 0; j < d; ++j) kinds[j] = data.feature_kind(j);
  RowMatrix minority;
  minority.Reset(pos.size(), d);
  std::vector<int> minority_labels(pos.size(), 1);
  for (std::size_t m = 0; m < pos.size(); ++m) {
    data.CopyRowTo(pos[m], minority.Row(m));
  }
  const NeighborIndex index(DatasetView::FromRows(
      minority.data(), pos.size(), d, minority_labels.data(), kinds));
  std::unordered_map<std::size_t, std::size_t> row_to_minority;
  row_to_minority.reserve(pos.size());
  for (std::size_t m = 0; m < pos.size(); ++m) row_to_minority[pos[m]] = m;

  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  Dataset out = data.Materialize();
  out.Reserve(data.num_rows() + total);

  std::vector<double> synthetic(data.num_features());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto it = row_to_minority.find(seeds[s]);
    SPE_CHECK(it != row_to_minority.end()) << "seed is not a minority row";
    const std::size_t seed_m = it->second;
    const std::vector<std::size_t> neighbors = index.Nearest(seed_m, k);
    if (neighbors.empty()) continue;
    const auto seed_row = minority.Row(seed_m);
    for (std::size_t c = 0; c < counts[s]; ++c) {
      const auto neighbor_row =
          minority.Row(neighbors[rng.Index(neighbors.size())]);
      const double u = rng.Uniform();
      for (std::size_t j = 0; j < synthetic.size(); ++j) {
        synthetic[j] = seed_row[j] + u * (neighbor_row[j] - seed_row[j]);
      }
      out.AddRow(synthetic, 1);
    }
  }
  return out;
}

SmoteSampler::SmoteSampler(std::size_t k) : k_(k) { SPE_CHECK_GT(k, 0u); }

Dataset SmoteSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::size_t num_neg = data.NegativeIndices().size();
  if (pos.size() >= num_neg) return data;  // already balanced

  const std::size_t needed = num_neg - pos.size();
  std::vector<std::size_t> counts(pos.size(), needed / pos.size());
  for (std::size_t i = 0; i < needed % pos.size(); ++i) ++counts[i];
  return WithSyntheticMinority(data, pos, counts, k_, rng);
}

}  // namespace spe
