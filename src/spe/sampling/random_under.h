#ifndef SPE_SAMPLING_RANDOM_UNDER_H_
#define SPE_SAMPLING_RANDOM_UNDER_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// RandUnder: keeps every minority example and a uniform random majority
/// subset of size `ratio * |P|` (ratio 1 balances the classes exactly,
/// as everywhere in the paper).
class RandomUnderSampler final : public Sampler {
 public:
  explicit RandomUnderSampler(double ratio = 1.0);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  std::string Name() const override { return "RandUnder"; }

 private:
  double ratio_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_RANDOM_UNDER_H_
