#ifndef SPE_SAMPLING_RANDOM_OVER_H_
#define SPE_SAMPLING_RANDOM_OVER_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// RandOver: duplicates uniformly chosen minority samples until
/// |P'| = ratio * |N| (ratio 1 balances the classes).
class RandomOverSampler final : public Sampler {
 public:
  explicit RandomOverSampler(double ratio = 1.0);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  std::string Name() const override { return "RandOver"; }

 private:
  double ratio_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_RANDOM_OVER_H_
