#ifndef SPE_SAMPLING_SMOTE_TOMEK_H_
#define SPE_SAMPLING_SMOTE_TOMEK_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// SMOTETomek (Batista et al., 2003): SMOTE over-sampling followed by
/// removal of Tomek-link majority members, trimming the blurred class
/// boundary SMOTE creates under overlap.
class SmoteTomekSampler final : public Sampler {
 public:
  explicit SmoteTomekSampler(std::size_t smote_k = 5);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "SMOTETomek"; }

 private:
  std::size_t smote_k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_SMOTE_TOMEK_H_
