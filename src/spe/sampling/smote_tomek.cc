#include "spe/sampling/smote_tomek.h"

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"
#include "spe/sampling/smote.h"
#include "spe/sampling/tomek_links.h"

namespace spe {

SmoteTomekSampler::SmoteTomekSampler(std::size_t smote_k) : smote_k_(smote_k) {
  SPE_CHECK_GT(smote_k, 0u);
}

Dataset SmoteTomekSampler::Resample(const Dataset& data, Rng& rng) const {
  const SmoteSampler smote(smote_k_);
  const Dataset oversampled = smote.Resample(data, rng);
  const NeighborIndex index(oversampled);
  const std::vector<std::size_t> drop = TomekLinkMajorityMembers(index);
  std::vector<char> dropped(oversampled.num_rows(), 0);
  for (std::size_t i : drop) dropped[i] = 1;
  std::vector<std::size_t> keep;
  keep.reserve(oversampled.num_rows() - drop.size());
  for (std::size_t i = 0; i < oversampled.num_rows(); ++i) {
    if (!dropped[i]) keep.push_back(i);
  }
  return oversampled.Subset(keep);
}

}  // namespace spe
