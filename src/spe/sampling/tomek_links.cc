#include "spe/sampling/tomek_links.h"

#include <algorithm>

namespace spe {

std::vector<std::size_t> TomekLinkMajorityMembers(const NeighborIndex& index) {
  const std::vector<std::vector<std::size_t>> nn = index.AllNearest(1);
  std::vector<std::size_t> majority_members;
  for (std::size_t i = 0; i < index.size(); ++i) {
    if (nn[i].empty()) continue;
    const std::size_t j = nn[i][0];
    // A link requires opposite classes and mutual nearest neighbours;
    // checking i < j would miss nothing but we only record the majority
    // member anyway, so scan all and deduplicate at the end.
    if (index.LabelOf(i) == index.LabelOf(j)) continue;
    if (nn[j].empty() || nn[j][0] != i) continue;
    majority_members.push_back(index.LabelOf(i) == 0 ? i : j);
  }
  std::sort(majority_members.begin(), majority_members.end());
  majority_members.erase(
      std::unique(majority_members.begin(), majority_members.end()),
      majority_members.end());
  return majority_members;
}

bool TomekLinksSampler::SelectIndices(const Dataset& data, Rng& /*rng*/,
                                      std::vector<std::size_t>* keep) const {
  const NeighborIndex index(data);
  const std::vector<std::size_t> drop = TomekLinkMajorityMembers(index);
  keep->clear();
  keep->reserve(data.num_rows() - drop.size());
  std::size_t next_drop = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (next_drop < drop.size() && drop[next_drop] == i) {
      ++next_drop;
      continue;
    }
    keep->push_back(i);
  }
  return true;
}

Dataset TomekLinksSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
