#ifndef SPE_SAMPLING_ENN_H_
#define SPE_SAMPLING_ENN_H_

#include <string>
#include <vector>

#include "spe/sampling/neighbors.h"
#include "spe/sampling/sampler.h"

namespace spe {

/// One Wilson editing pass: rows whose class disagrees with the majority
/// vote of their `k` nearest neighbours are dropped. With
/// `majority_only`, only majority-class (label 0) rows can be dropped —
/// the imbalanced-learning convention, since deleting rare minority
/// samples is usually a bad trade. Returns the kept indices, ascending.
/// Exposed for reuse by AllKNN, NCR and SMOTEENN.
std::vector<std::size_t> EnnKeptIndices(const NeighborIndex& index, std::size_t k,
                                        bool majority_only);

/// ENN (Edited Nearest Neighbours, Wilson 1972) under-sampler.
class EnnSampler final : public Sampler {
 public:
  explicit EnnSampler(std::size_t k = 3, bool majority_only = true);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "ENN"; }

 private:
  std::size_t k_;
  bool majority_only_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_ENN_H_
