#ifndef SPE_SAMPLING_ALL_KNN_H_
#define SPE_SAMPLING_ALL_KNN_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// AllKNN (Tomek, 1976): repeated Wilson editing with the neighbourhood
/// size growing from 1 to `max_k`, dropping majority samples that any
/// round misclassifies. Each round re-indexes the surviving set, which
/// is what makes the method so expensive on large data (Table V's
/// slowest row).
class AllKnnSampler final : public Sampler {
 public:
  explicit AllKnnSampler(std::size_t max_k = 3);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "AllKNN"; }

 private:
  std::size_t max_k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_ALL_KNN_H_
