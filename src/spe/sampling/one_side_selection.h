#ifndef SPE_SAMPLING_ONE_SIDE_SELECTION_H_
#define SPE_SAMPLING_ONE_SIDE_SELECTION_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// OSS (One Side Selection, Kubat & Matwin 1997): keeps all minority
/// samples plus `seeds` random majority samples, adds every majority
/// sample this 1-NN rule misclassifies (the informative ones near the
/// boundary), then removes Tomek-link majority members from the result.
class OneSideSelectionSampler final : public Sampler {
 public:
  explicit OneSideSelectionSampler(std::size_t seeds = 1);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "OSS"; }

 private:
  std::size_t seeds_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_ONE_SIDE_SELECTION_H_
