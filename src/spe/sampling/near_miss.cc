#include "spe/sampling/near_miss.h"

#include <algorithm>
#include <numeric>

#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/sampling/neighbors.h"

namespace spe {

NearMissSampler::NearMissSampler(std::size_t k) : k_(k) {
  SPE_CHECK_GT(k, 0u);
}

bool NearMissSampler::SelectIndices(const Dataset& data, Rng& rng,
                                    std::vector<std::size_t>* keep) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  const NeighborIndex index(data);
  std::vector<double> mean_distance(neg.size());
  ParallelFor(0, neg.size(), [&](std::size_t i) {
    const std::vector<std::size_t> nearest = index.NearestAmong(neg[i], pos, k_);
    double sum = 0.0;
    for (std::size_t j : nearest) sum += index.Distance(neg[i], j);
    mean_distance[i] = sum / static_cast<double>(nearest.size());
  });

  // Majority samples sorted by ascending mean distance to the minority.
  std::vector<std::size_t> order(neg.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mean_distance[a] < mean_distance[b];
  });

  *keep = pos;
  const std::size_t target = std::min(neg.size(), pos.size());
  for (std::size_t i = 0; i < target; ++i) keep->push_back(neg[order[i]]);
  rng.Shuffle(*keep);
  return true;
}

Dataset NearMissSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
