#include "spe/sampling/one_side_selection.h"

#include <algorithm>

#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/sampling/neighbors.h"
#include "spe/sampling/tomek_links.h"

namespace spe {

OneSideSelectionSampler::OneSideSelectionSampler(std::size_t seeds)
    : seeds_(seeds) {
  SPE_CHECK_GT(seeds, 0u);
}

bool OneSideSelectionSampler::SelectIndices(const Dataset& data, Rng& rng,
                                            std::vector<std::size_t>* keep) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  const NeighborIndex index(data);

  // Reference set C: all minority plus a few random majority seeds.
  std::vector<std::size_t> reference = pos;
  std::vector<bool> in_reference(data.num_rows(), false);
  for (std::size_t i : pos) in_reference[i] = true;
  const std::size_t num_seeds = std::min(seeds_, neg.size());
  for (std::size_t i : rng.SampleWithoutReplacement(neg.size(), num_seeds)) {
    reference.push_back(neg[i]);
    in_reference[neg[i]] = true;
  }

  // Every majority sample the 1-NN rule over C misclassifies (nearest
  // reference point is minority) is informative: keep it.
  std::vector<char> misclassified(neg.size(), 0);
  ParallelFor(0, neg.size(), [&](std::size_t i) {
    if (in_reference[neg[i]]) return;
    const std::vector<std::size_t> nearest =
        index.NearestAmong(neg[i], reference, 1);
    misclassified[i] =
        static_cast<char>(!nearest.empty() && index.LabelOf(nearest[0]) == 1);
  });
  std::vector<std::size_t> kept = reference;
  for (std::size_t i = 0; i < neg.size(); ++i) {
    if (misclassified[i]) kept.push_back(neg[i]);
  }
  std::sort(kept.begin(), kept.end());

  // Final cleaning: drop Tomek-link majority members from the kept set,
  // indexing a view over it rather than materializing a candidate copy.
  const DatasetView candidate(data, kept);
  const NeighborIndex kept_index(candidate);
  const std::vector<std::size_t> drop = TomekLinkMajorityMembers(kept_index);
  std::vector<char> dropped(kept.size(), 0);
  for (std::size_t i : drop) dropped[i] = 1;
  keep->clear();
  keep->reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (!dropped[i]) keep->push_back(kept[i]);
  }
  return true;
}

Dataset OneSideSelectionSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
