#include "spe/sampling/borderline_smote.h"

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"
#include "spe/sampling/smote.h"

namespace spe {

BorderlineSmoteSampler::BorderlineSmoteSampler(std::size_t k) : k_(k) {
  SPE_CHECK_GT(k, 0u);
}

Dataset BorderlineSmoteSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::size_t num_neg = data.NegativeIndices().size();
  if (pos.size() >= num_neg) return data;
  const std::size_t needed = num_neg - pos.size();

  const NeighborIndex index(data);
  std::vector<std::size_t> danger;
  for (std::size_t i : pos) {
    const std::vector<std::size_t> neighbors = index.Nearest(i, k_);
    std::size_t majority = 0;
    for (std::size_t j : neighbors) {
      majority += static_cast<std::size_t>(index.LabelOf(j) == 0);
    }
    // "Danger" band: half or more majority neighbours, but not all
    // (all-majority marks the sample as noise and it seeds nothing).
    if (2 * majority >= neighbors.size() && majority < neighbors.size()) {
      danger.push_back(i);
    }
  }
  // Degenerate geometry (no borderline region): fall back to plain SMOTE
  // seeding, matching imbalanced-learn.
  if (danger.empty()) danger = pos;

  std::vector<std::size_t> counts(danger.size(), needed / danger.size());
  for (std::size_t i = 0; i < needed % danger.size(); ++i) ++counts[i];
  return WithSyntheticMinority(data, danger, counts, k_, rng);
}

}  // namespace spe
