#include "spe/sampling/cluster_centroids.h"

#include "spe/cluster/kmeans.h"
#include "spe/common/check.h"

namespace spe {

Dataset ClusterCentroidsSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());
  if (neg.size() <= pos.size()) return data;

  KMeansConfig config;
  config.num_clusters = pos.size();
  config.seed = rng.engine()();
  KMeans kmeans(config);
  kmeans.Fit(data.Subset(neg));

  Dataset out = data.Subset(pos);
  out.Reserve(pos.size() + kmeans.num_clusters());
  for (const auto& centroid : kmeans.centroids()) {
    out.AddRow(centroid, 0);
  }
  return out;
}

}  // namespace spe
