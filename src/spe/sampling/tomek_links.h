#ifndef SPE_SAMPLING_TOMEK_LINKS_H_
#define SPE_SAMPLING_TOMEK_LINKS_H_

#include <string>
#include <vector>

#include "spe/sampling/neighbors.h"
#include "spe/sampling/sampler.h"

namespace spe {

/// Finds all Tomek links: pairs of opposite-class samples that are each
/// other's single nearest neighbour. Returns the majority-class member
/// of every link (ascending, unique). Exposed for reuse by OSS and
/// SMOTETomek.
std::vector<std::size_t> TomekLinkMajorityMembers(const NeighborIndex& index);

/// TomekLink under-sampler (Tomek, 1976): removes the majority member of
/// every Tomek link, peeling borderline/noisy majority samples off the
/// class boundary.
class TomekLinksSampler final : public Sampler {
 public:
  TomekLinksSampler() = default;

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool SelectIndices(const Dataset& data, Rng& rng,
                     std::vector<std::size_t>* keep) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "TomekLink"; }
};

}  // namespace spe

#endif  // SPE_SAMPLING_TOMEK_LINKS_H_
