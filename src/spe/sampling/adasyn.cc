#include "spe/sampling/adasyn.h"

#include <cmath>

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"
#include "spe/sampling/smote.h"

namespace spe {

AdasynSampler::AdasynSampler(std::size_t k) : k_(k) { SPE_CHECK_GT(k, 0u); }

Dataset AdasynSampler::Resample(const Dataset& data, Rng& rng) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::size_t num_neg = data.NegativeIndices().size();
  if (pos.size() >= num_neg) return data;
  const std::size_t needed = num_neg - pos.size();

  // Hardness ratio r_i: majority fraction of each minority sample's
  // neighbourhood in the full dataset.
  const NeighborIndex index(data);
  std::vector<double> ratio(pos.size());
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::vector<std::size_t> neighbors = index.Nearest(pos[i], k_);
    std::size_t majority = 0;
    for (std::size_t j : neighbors) {
      majority += static_cast<std::size_t>(index.LabelOf(j) == 0);
    }
    ratio[i] = neighbors.empty()
                   ? 0.0
                   : static_cast<double>(majority) /
                         static_cast<double>(neighbors.size());
    ratio_sum += ratio[i];
  }

  std::vector<std::size_t> counts(pos.size(), 0);
  if (ratio_sum <= 0.0) {
    // No minority point has majority neighbours (fully separated data):
    // fall back to uniform seeding, as imbalanced-learn does.
    for (std::size_t i = 0; i < pos.size(); ++i) counts[i] = needed / pos.size();
    for (std::size_t i = 0; i < needed % pos.size(); ++i) ++counts[i];
  } else {
    for (std::size_t i = 0; i < pos.size(); ++i) {
      counts[i] = static_cast<std::size_t>(
          std::round(ratio[i] / ratio_sum * static_cast<double>(needed)));
    }
  }
  return WithSyntheticMinority(data, pos, counts, k_, rng);
}

}  // namespace spe
