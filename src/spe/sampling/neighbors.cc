#include "spe/sampling/neighbors.h"

#include <algorithm>
#include <cmath>

#include "spe/common/check.h"
#include "spe/common/parallel.h"

namespace spe {
namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

// Keeps the k smallest (distance, index) pairs seen so far (max-heap).
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k + 1); }

  void Offer(double distance, std::size_t index) {
    if (heap_.size() < k_) {
      heap_.emplace_back(distance, index);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (distance < heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {distance, index};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Indices ascending by distance.
  std::vector<std::size_t> Sorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    std::vector<std::size_t> out(heap_.size());
    for (std::size_t i = 0; i < heap_.size(); ++i) out[i] = heap_[i].second;
    return out;
  }

 private:
  std::size_t k_;
  std::vector<std::pair<double, std::size_t>> heap_;
};

}  // namespace

NeighborIndex::NeighborIndex(const DatasetView& data) {
  data.CheckAlive();
  SPE_CHECK(!data.HasCategoricalFeatures())
      << "distance-based methods need a numeric feature space "
         "(the paper's 'no appropriate distance metric' case)";
  SPE_CHECK_GT(data.num_rows(), 0u);
  FeatureScaler scaler;
  scaler.Fit(data);
  scaler.TransformToRows(data, rows_);
  labels_ = data.LabelsVector();
}

double NeighborIndex::Distance(std::size_t a, std::size_t b) const {
  return std::sqrt(SquaredDistance(rows_.Row(a), rows_.Row(b)));
}

std::vector<std::size_t> NeighborIndex::Nearest(std::size_t query,
                                                std::size_t k) const {
  TopK top(k);
  const auto q = rows_.Row(query);
  for (std::size_t i = 0; i < rows_.num_rows(); ++i) {
    if (i == query) continue;
    top.Offer(SquaredDistance(q, rows_.Row(i)), i);
  }
  return top.Sorted();
}

std::vector<std::size_t> NeighborIndex::NearestAmong(
    std::size_t query, std::span<const std::size_t> candidates,
    std::size_t k) const {
  TopK top(k);
  const auto q = rows_.Row(query);
  for (std::size_t i : candidates) {
    if (i == query) continue;
    top.Offer(SquaredDistance(q, rows_.Row(i)), i);
  }
  return top.Sorted();
}

std::vector<std::vector<std::size_t>> NeighborIndex::AllNearest(
    std::size_t k) const {
  std::vector<std::vector<std::size_t>> out(rows_.num_rows());
  ParallelFor(0, rows_.num_rows(),
              [&](std::size_t i) { out[i] = Nearest(i, k); });
  return out;
}

}  // namespace spe
