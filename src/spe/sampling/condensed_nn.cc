#include "spe/sampling/condensed_nn.h"

#include <algorithm>
#include <vector>

#include "spe/common/check.h"
#include "spe/sampling/neighbors.h"

namespace spe {

bool CondensedNnSampler::SelectIndices(const Dataset& data, Rng& rng,
                                       std::vector<std::size_t>* keep) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  const NeighborIndex index(data);

  // Store: all minority + one random majority seed.
  std::vector<std::size_t> store = pos;
  rng.Shuffle(neg);
  store.push_back(neg[0]);

  // Single sequential pass (Hart's inner loop iterated to a fixed point
  // is also classic; one pass is the imbalanced-learning convention and
  // keeps the cost at O(n * |store|)).
  for (std::size_t i = 1; i < neg.size(); ++i) {
    const std::vector<std::size_t> nearest =
        index.NearestAmong(neg[i], store, 1);
    if (!nearest.empty() && index.LabelOf(nearest[0]) != 0) {
      store.push_back(neg[i]);  // misclassified: keep it
    }
  }
  std::sort(store.begin(), store.end());
  *keep = std::move(store);
  return true;
}

Dataset CondensedNnSampler::Resample(const Dataset& data, Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
