#include "spe/sampling/smote_enn.h"

#include "spe/common/check.h"
#include "spe/sampling/enn.h"
#include "spe/sampling/smote.h"

namespace spe {

SmoteEnnSampler::SmoteEnnSampler(std::size_t smote_k, std::size_t enn_k)
    : smote_k_(smote_k), enn_k_(enn_k) {
  SPE_CHECK_GT(smote_k, 0u);
  SPE_CHECK_GT(enn_k, 0u);
}

Dataset SmoteEnnSampler::Resample(const Dataset& data, Rng& rng) const {
  const SmoteSampler smote(smote_k_);
  const Dataset oversampled = smote.Resample(data, rng);
  const NeighborIndex index(oversampled);
  return oversampled.Subset(
      EnnKeptIndices(index, enn_k_, /*majority_only=*/false));
}

}  // namespace spe
