#ifndef SPE_SAMPLING_SAMPLER_FACTORY_H_
#define SPE_SAMPLING_SAMPLER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "spe/sampling/sampler.h"

namespace spe {

/// Builds a re-sampling method by its paper-table name: "RandUnder",
/// "NearMiss", "Clean", "ENN", "TomekLink", "AllKNN", "OSS", "RandOver",
/// "SMOTE", "ADASYN", "BorderSMOTE", "SMOTEENN", "SMOTETomek".
/// Aborts on an unknown name.
std::unique_ptr<Sampler> MakeSampler(const std::string& name);

/// All names accepted by MakeSampler, in Table V's row order.
std::vector<std::string> KnownSamplerNames();

}  // namespace spe

#endif  // SPE_SAMPLING_SAMPLER_FACTORY_H_
