#include "spe/sampling/instance_hardness_threshold.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"

namespace spe {

InstanceHardnessThresholdSampler::InstanceHardnessThresholdSampler(
    std::unique_ptr<Classifier> probe, std::size_t folds)
    : probe_(std::move(probe)), folds_(folds) {
  SPE_CHECK_GE(folds, 2u);
  if (probe_ == nullptr) {
    DecisionTreeConfig config;
    config.max_depth = 5;
    probe_ = std::make_unique<DecisionTree>(config);
  }
}

bool InstanceHardnessThresholdSampler::SelectIndices(
    const Dataset& data, Rng& rng, std::vector<std::size_t>* keep) const {
  const std::vector<std::size_t> pos = data.PositiveIndices();
  const std::vector<std::size_t> neg = data.NegativeIndices();
  SPE_CHECK(!pos.empty());
  if (neg.size() <= pos.size()) {
    keep->resize(data.num_rows());
    std::iota(keep->begin(), keep->end(), std::size_t{0});
    return true;
  }

  // Out-of-fold positive-class probability for every row.
  std::vector<std::size_t> fold_of(data.num_rows());
  {
    std::vector<std::size_t> order(data.num_rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.Shuffle(order);
    for (std::size_t i = 0; i < order.size(); ++i) {
      fold_of[order[i]] = i % folds_;
    }
  }
  std::vector<double> prob(data.num_rows(), 0.0);
  for (std::size_t fold = 0; fold < folds_; ++fold) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> score_rows;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      (fold_of[i] == fold ? score_rows : train_rows).push_back(i);
    }
    std::unique_ptr<Classifier> model = probe_->Clone();
    model->Reseed(rng.engine()());
    // Fit through an indexed view — the fold split copies no rows.
    model->Fit(DatasetView(data, train_rows));
    std::vector<double> row(data.num_features());
    for (std::size_t i : score_rows) {
      data.CopyRowTo(i, row);
      prob[i] = model->PredictRow(row);
    }
  }

  // Keep the |P| majority samples the probe classifies *best* (lowest
  // positive probability): hard/noisy majority is discarded.
  std::vector<std::size_t> order(neg.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return prob[neg[a]] < prob[neg[b]];
  });
  *keep = pos;
  for (std::size_t i = 0; i < pos.size(); ++i) keep->push_back(neg[order[i]]);
  std::sort(keep->begin(), keep->end());
  return true;
}

Dataset InstanceHardnessThresholdSampler::Resample(const Dataset& data,
                                                   Rng& rng) const {
  std::vector<std::size_t> keep;
  SelectIndices(data, rng, &keep);
  return data.Subset(keep);
}

}  // namespace spe
