#ifndef SPE_SAMPLING_SAMPLER_H_
#define SPE_SAMPLING_SAMPLER_H_

#include <string>
#include <vector>

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

/// A re-sampling method: consumes an imbalanced training set and returns
/// the set a downstream classifier should be fitted on. This is the
/// "data-level method" abstraction of §III; each concrete sampler
/// reproduces one row of the paper's Table V.
class Sampler {
 public:
  virtual ~Sampler();

  /// Produces the re-sampled training set. Deterministic samplers ignore
  /// `rng`. Distance-based samplers abort on categorical features — the
  /// exact inapplicability the paper marks with "- -" in Table IV; use
  /// RequiresNumericalFeatures() to pre-check.
  virtual Dataset Resample(const Dataset& data, Rng& rng) const = 0;

  /// Zero-copy fast path for pure under-samplers: when the resampled set
  /// is exactly a row subset of `data`, fills `keep` with the selected
  /// row indices — in the same order Resample would emit them, consuming
  /// the same RNG stream — and returns true. Callers then fit through
  /// `DatasetView(data, keep)` instead of materializing a copy. Samplers
  /// that synthesize rows (SMOTE family, cluster centroids) keep the
  /// default and return false, in which case `keep` is untouched and the
  /// caller falls back to Resample.
  virtual bool SelectIndices(const Dataset& data, Rng& rng,
                             std::vector<std::size_t>* keep) const {
    (void)data;
    (void)rng;
    (void)keep;
    return false;
  }

  /// True for k-NN-based methods that need a meaningful numeric distance.
  virtual bool RequiresNumericalFeatures() const { return false; }

  /// Name as used in the paper's tables, e.g. "SMOTE", "Clean".
  virtual std::string Name() const = 0;
};

}  // namespace spe

#endif  // SPE_SAMPLING_SAMPLER_H_
