#ifndef SPE_SAMPLING_SAMPLER_H_
#define SPE_SAMPLING_SAMPLER_H_

#include <string>

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

/// A re-sampling method: consumes an imbalanced training set and returns
/// the set a downstream classifier should be fitted on. This is the
/// "data-level method" abstraction of §III; each concrete sampler
/// reproduces one row of the paper's Table V.
class Sampler {
 public:
  virtual ~Sampler();

  /// Produces the re-sampled training set. Deterministic samplers ignore
  /// `rng`. Distance-based samplers abort on categorical features — the
  /// exact inapplicability the paper marks with "- -" in Table IV; use
  /// RequiresNumericalFeatures() to pre-check.
  virtual Dataset Resample(const Dataset& data, Rng& rng) const = 0;

  /// True for k-NN-based methods that need a meaningful numeric distance.
  virtual bool RequiresNumericalFeatures() const { return false; }

  /// Name as used in the paper's tables, e.g. "SMOTE", "Clean".
  virtual std::string Name() const = 0;
};

}  // namespace spe

#endif  // SPE_SAMPLING_SAMPLER_H_
