#ifndef SPE_SAMPLING_SMOTE_ENN_H_
#define SPE_SAMPLING_SMOTE_ENN_H_

#include <string>

#include "spe/sampling/sampler.h"

namespace spe {

/// SMOTEENN (Batista et al., 2004): SMOTE over-sampling followed by
/// Wilson editing of *both* classes to clean the interpolation artifacts
/// out of the overlap region.
class SmoteEnnSampler final : public Sampler {
 public:
  explicit SmoteEnnSampler(std::size_t smote_k = 5, std::size_t enn_k = 3);

  Dataset Resample(const Dataset& data, Rng& rng) const override;
  bool RequiresNumericalFeatures() const override { return true; }
  std::string Name() const override { return "SMOTEENN"; }

 private:
  std::size_t smote_k_;
  std::size_t enn_k_;
};

}  // namespace spe

#endif  // SPE_SAMPLING_SMOTE_ENN_H_
