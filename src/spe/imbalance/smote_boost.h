#ifndef SPE_IMBALANCE_SMOTE_BOOST_H_
#define SPE_IMBALANCE_SMOTE_BOOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

struct SmoteBoostConfig {
  std::size_t n_estimators = 10;
  double learning_rate = 1.0;
  std::size_t smote_k = 5;
  std::uint64_t seed = 0;
};

/// SMOTEBoost (Chawla et al., 2003): AdaBoost where every iteration
/// first augments the training set with |P| fresh SMOTE-synthesized
/// minority samples (the paper's §VI-C.2 description). Synthetic rows
/// carry the mean minority weight during the stage fit and are discarded
/// before the boosting weight update, which runs on the original rows.
/// Distance-based, so it inherits SMOTE's restriction to numerical data.
class SmoteBoost final : public Classifier {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit SmoteBoost(const SmoteBoostConfig& config = {});
  SmoteBoost(const SmoteBoostConfig& config,
             std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  /// Prediction with only the first `stages` stages (Fig. 7 tracing).
  std::vector<double> PredictProbaStaged(const DatasetView& data,
                                         std::size_t stages) const;
  std::size_t NumStages() const { return stages_.size(); }

  /// Total rows used to fit all stages (the Table VI "#Sample" column).
  std::size_t TotalTrainingRows() const { return total_training_rows_; }

 private:
  SmoteBoostConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  std::vector<std::unique_ptr<Classifier>> stages_;
  std::size_t total_training_rows_ = 0;
};

}  // namespace spe

#endif  // SPE_IMBALANCE_SMOTE_BOOST_H_
