#include "spe/imbalance/smote_boost.h"

#include <cmath>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/math.h"
#include "spe/common/rng.h"
#include "spe/sampling/smote.h"

namespace spe {

SmoteBoost::SmoteBoost(const SmoteBoostConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

SmoteBoost::SmoteBoost(const SmoteBoostConfig& config,
                       std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
  SPE_CHECK(base_prototype_->SupportsSampleWeights())
      << "SMOTEBoost base learner must support sample weights";
}

void SmoteBoost::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  SPE_CHECK_GT(pos.size(), 1u);

  const std::size_t n = train.num_rows();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  stages_.clear();
  total_training_rows_ = 0;
  Rng rng(config_.seed);

  // |P| synthetic samples per stage, one seeded at each minority row.
  const std::vector<std::size_t> counts(pos.size(), 1);

  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    const Dataset augmented =
        WithSyntheticMinority(train, pos, counts, config_.smote_k, rng);
    total_training_rows_ += augmented.num_rows();

    // Stage weights: boosting weights for real rows; synthetic rows get
    // the mean minority weight so they matter as much as a typical
    // minority sample.
    double minority_weight = 0.0;
    for (std::size_t i : pos) minority_weight += weights[i];
    const double synthetic_weight =
        minority_weight / static_cast<double>(pos.size());
    std::vector<double> stage_weights(augmented.num_rows());
    for (std::size_t i = 0; i < n; ++i) stage_weights[i] = weights[i];
    for (std::size_t i = n; i < augmented.num_rows(); ++i) {
      stage_weights[i] = synthetic_weight;
    }
    double sum_w = 0.0;
    for (double w : stage_weights) sum_w += w;
    for (double& w : stage_weights) w /= sum_w;

    std::unique_ptr<Classifier> stage = base_prototype_->Clone();
    stage->Reseed(config_.seed + 104729 * (m + 1));
    stage->FitWeighted(augmented, stage_weights);

    // Boosting update on the original rows only.
    const std::vector<double> probs = stage->PredictProba(train);
    stages_.push_back(std::move(stage));
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y = train.Label(i) == 1 ? 1.0 : -1.0;
      weights[i] *=
          std::exp(-y * config_.learning_rate * HalfLogOdds(probs[i]));
      sum += weights[i];
    }
    if (sum <= 0.0 || !std::isfinite(sum)) break;
    for (double& w : weights) w /= sum;
  }
}

std::vector<double> SmoteBoost::PredictProbaStaged(const DatasetView& data,
                                                   std::size_t stages) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  const std::size_t use = std::min(stages, stages_.size());
  SPE_CHECK_GT(use, 0u);
  std::vector<double> score(data.num_rows(), 0.0);
  for (std::size_t m = 0; m < use; ++m) {
    const std::vector<double> p = stages_[m]->PredictProba(data);
    for (std::size_t i = 0; i < score.size(); ++i) score[i] += HalfLogOdds(p[i]);
  }
  for (double& s : score) s = Sigmoid(2.0 * config_.learning_rate * s);
  return score;
}

std::vector<double> SmoteBoost::PredictProba(const DatasetView& data) const {
  return PredictProbaStaged(data, stages_.size());
}

void SmoteBoost::AccumulateProbaInto(const DatasetView& data,
                                     std::span<double> acc) const {
  // PredictProba is a staged vote reduction, not a PredictRow loop;
  // keep that path so the accumulated bits match it.
  AccumulateViaPredictProba(data, acc);
}

double SmoteBoost::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  double score = 0.0;
  for (const auto& stage : stages_) score += HalfLogOdds(stage->PredictRow(x));
  return Sigmoid(2.0 * config_.learning_rate * score);
}

std::unique_ptr<Classifier> SmoteBoost::Clone() const {
  return std::make_unique<SmoteBoost>(config_, base_prototype_->Clone());
}

std::string SmoteBoost::Name() const {
  std::ostringstream os;
  os << "SMOTEBoost" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
