#ifndef SPE_IMBALANCE_RUS_BOOST_H_
#define SPE_IMBALANCE_RUS_BOOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

struct RusBoostConfig {
  std::size_t n_estimators = 10;
  double learning_rate = 1.0;
  std::uint64_t seed = 0;
};

/// RUSBoost (Seiffert et al., 2010): AdaBoost with random under-sampling
/// inside every boosting iteration. Each stage trains the (weight-
/// supporting) base on a balanced subset using the boosting weights of
/// the surviving rows, then performs the usual real-boosting weight
/// update on the full training set.
class RusBoost final : public Classifier {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit RusBoost(const RusBoostConfig& config = {});
  RusBoost(const RusBoostConfig& config, std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  /// Prediction using only the first `stages` boosting stages — lets the
  /// Fig. 7 bench trace performance vs ensemble size from one fit.
  std::vector<double> PredictProbaStaged(const DatasetView& data,
                                         std::size_t stages) const;
  std::size_t NumStages() const { return stages_.size(); }

 private:
  RusBoostConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  std::vector<std::unique_ptr<Classifier>> stages_;
};

}  // namespace spe

#endif  // SPE_IMBALANCE_RUS_BOOST_H_
