#include "spe/imbalance/smote_bagging.h"

#include <algorithm>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/rng.h"
#include "spe/kernels/flat_forest.h"
#include "spe/sampling/smote.h"

namespace spe {

SmoteBagging::SmoteBagging(const SmoteBaggingConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

SmoteBagging::SmoteBagging(const SmoteBaggingConfig& config,
                           std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
}

void SmoteBagging::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK_GT(pos.size(), 1u);
  SPE_CHECK(!neg.empty());

  ensemble_ = VotingEnsemble();
  total_training_rows_ = 0;
  Rng rng(config_.seed);

  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    // Resampling rate ramps 10% -> 100% across bags (Wang & Yao's
    // schedule): the fraction of the minority quota filled by bootstrap
    // copies, the rest by SMOTE synthesis.
    const double rate =
        0.1 + 0.9 * (config_.n_estimators <= 1
                         ? 1.0
                         : static_cast<double>(m) /
                               static_cast<double>(config_.n_estimators - 1));

    // Majority side: plain bootstrap of |N| rows.
    Dataset bag(train.num_features());
    for (std::size_t f = 0; f < train.num_features(); ++f) {
      bag.set_feature_kind(f, train.feature_kind(f));
    }
    bag.Reserve(2 * neg.size());
    std::vector<double> row(train.num_features());
    for (std::size_t i : rng.SampleWithReplacement(neg.size(), neg.size())) {
      train.CopyRowTo(neg[i], row);
      bag.AddRow(row, 0);
    }

    // Minority side: bootstrap `rate * |N|` rows, SMOTE the remainder.
    const auto bootstrap_quota = std::clamp<std::size_t>(
        static_cast<std::size_t>(rate * static_cast<double>(neg.size()) + 0.5),
        1, neg.size());
    std::vector<std::size_t> bag_pos_rows;  // rows (in bag) of real minority
    for (std::size_t i :
         rng.SampleWithReplacement(pos.size(), bootstrap_quota)) {
      bag_pos_rows.push_back(bag.num_rows());
      train.CopyRowTo(pos[i], row);
      bag.AddRow(row, 1);
    }
    const std::size_t synthetic_quota = neg.size() - bootstrap_quota;
    if (synthetic_quota > 0) {
      std::vector<std::size_t> counts(bag_pos_rows.size(),
                                      synthetic_quota / bag_pos_rows.size());
      for (std::size_t i = 0; i < synthetic_quota % bag_pos_rows.size(); ++i) {
        ++counts[i];
      }
      bag = WithSyntheticMinority(bag, bag_pos_rows, counts, config_.smote_k, rng);
    }
    total_training_rows_ += bag.num_rows();

    std::unique_ptr<Classifier> member = base_prototype_->Clone();
    member->Reseed(config_.seed + 104729 * (m + 1));
    member->Fit(bag);
    ensemble_.Add(std::move(member));
    if (callback_) callback_(IterationInfo{m + 1, ensemble_, bag});
  }
}

double SmoteBagging::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> SmoteBagging::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

void SmoteBagging::AccumulateProbaInto(const DatasetView& data,
                                       std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool SmoteBagging::LowerToFlat(kernels::FlatProgram& program,
                               kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* SmoteBagging::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> SmoteBagging::Clone() const {
  return std::make_unique<SmoteBagging>(config_, base_prototype_->Clone());
}

std::string SmoteBagging::Name() const {
  std::ostringstream os;
  os << "SMOTEBagging" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
