#include "spe/imbalance/easy_ensemble.h"

#include "spe/classifiers/adaboost.h"

namespace spe {
namespace {

std::unique_ptr<Classifier> DefaultAdaBoost() {
  AdaBoostConfig config;
  config.n_estimators = 10;
  return std::make_unique<AdaBoost>(config);
}

}  // namespace

EasyEnsemble::EasyEnsemble(const UnderBaggingConfig& config)
    : UnderBagging(config, DefaultAdaBoost()) {}

EasyEnsemble::EasyEnsemble(const UnderBaggingConfig& config,
                           std::unique_ptr<Classifier> base_prototype)
    : UnderBagging(config, std::move(base_prototype)) {}

std::unique_ptr<Classifier> EasyEnsemble::Clone() const {
  return std::make_unique<EasyEnsemble>(config(), base_prototype().Clone());
}

}  // namespace spe
