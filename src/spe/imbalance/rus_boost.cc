#include "spe/imbalance/rus_boost.h"

#include <cmath>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/math.h"
#include "spe/common/rng.h"

namespace spe {

RusBoost::RusBoost(const RusBoostConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

RusBoost::RusBoost(const RusBoostConfig& config,
                   std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
  SPE_CHECK(base_prototype_->SupportsSampleWeights())
      << "RUSBoost base learner must support sample weights";
}

void RusBoost::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  const std::size_t n = train.num_rows();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  stages_.clear();
  Rng rng(config_.seed);
  // Row-major views have no parent matrix to index into; materialize
  // once and run every per-stage selection against the copy.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  }
  std::vector<std::size_t> subset_abs;

  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    // Random under-sampling: all minority + |P| uniform majority.
    const std::size_t take = std::min(pos.size(), neg.size());
    std::vector<std::size_t> subset_rows = pos;
    for (std::size_t i : rng.SampleWithoutReplacement(neg.size(), take)) {
      subset_rows.push_back(neg[i]);
    }
    std::vector<double> subset_weights(subset_rows.size());
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < subset_rows.size(); ++i) {
      subset_weights[i] = weights[subset_rows[i]];
      weight_sum += subset_weights[i];
    }
    SPE_CHECK_GT(weight_sum, 0.0);
    for (double& w : subset_weights) w /= weight_sum;

    // The stage fits through an indexed view over the same rows the old
    // materializing Subset() copied.
    subset_abs.resize(subset_rows.size());
    for (std::size_t i = 0; i < subset_rows.size(); ++i) {
      subset_abs[i] = base.RowIndex(subset_rows[i]);
    }
    std::unique_ptr<Classifier> stage = base_prototype_->Clone();
    stage->Reseed(config_.seed + 104729 * (m + 1));
    stage->FitWeighted(base.WithIndices(subset_abs), subset_weights);

    // Real-boosting update on the full training set.
    const std::vector<double> probs = stage->PredictProba(train);
    stages_.push_back(std::move(stage));
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y = train.Label(i) == 1 ? 1.0 : -1.0;
      weights[i] *=
          std::exp(-y * config_.learning_rate * HalfLogOdds(probs[i]));
      sum += weights[i];
    }
    if (sum <= 0.0 || !std::isfinite(sum)) break;
    for (double& w : weights) w /= sum;
  }
}

std::vector<double> RusBoost::PredictProbaStaged(const DatasetView& data,
                                                 std::size_t stages) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  const std::size_t use = std::min(stages, stages_.size());
  SPE_CHECK_GT(use, 0u);
  std::vector<double> score(data.num_rows(), 0.0);
  for (std::size_t m = 0; m < use; ++m) {
    const std::vector<double> p = stages_[m]->PredictProba(data);
    for (std::size_t i = 0; i < score.size(); ++i) score[i] += HalfLogOdds(p[i]);
  }
  for (double& s : score) s = Sigmoid(2.0 * config_.learning_rate * s);
  return score;
}

std::vector<double> RusBoost::PredictProba(const DatasetView& data) const {
  return PredictProbaStaged(data, stages_.size());
}

void RusBoost::AccumulateProbaInto(const DatasetView& data,
                                   std::span<double> acc) const {
  // PredictProba is a staged vote reduction, not a PredictRow loop;
  // keep that path so the accumulated bits match it.
  AccumulateViaPredictProba(data, acc);
}

double RusBoost::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  double score = 0.0;
  for (const auto& stage : stages_) score += HalfLogOdds(stage->PredictRow(x));
  return Sigmoid(2.0 * config_.learning_rate * score);
}

std::unique_ptr<Classifier> RusBoost::Clone() const {
  return std::make_unique<RusBoost>(config_, base_prototype_->Clone());
}

std::string RusBoost::Name() const {
  std::ostringstream os;
  os << "RUSBoost" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
