#ifndef SPE_IMBALANCE_SMOTE_BAGGING_H_
#define SPE_IMBALANCE_SMOTE_BAGGING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/training_observer.h"
#include "spe/kernels/program.h"

namespace spe {

struct SmoteBaggingConfig {
  std::size_t n_estimators = 10;
  std::size_t smote_k = 5;
  std::uint64_t seed = 0;
};

/// SMOTEBagging (Wang & Yao, 2009): bagging where each bag is a
/// bootstrap of the majority class plus a minority class SMOTE-expanded
/// to match it. The minority resampling rate varies across bags (ramping
/// from 10% bootstrap / 90% synthetic to 100% bootstrap / 0% synthetic
/// before topping up), which is the "each bag's sample quantity varies"
/// of §VI-C.2 and the source of the method's enormous #Sample column in
/// Table VI. Distance-based via SMOTE, so numerical features only.
class SmoteBagging final : public Classifier,
                           public kernels::FlatCompilable,
                           public kernels::FlatScorable {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit SmoteBagging(const SmoteBaggingConfig& config = {});
  SmoteBagging(const SmoteBaggingConfig& config,
               std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  void set_iteration_callback(IterationCallback callback) {
    callback_ = std::move(callback);
  }
  std::size_t NumMembers() const { return ensemble_.size(); }

  /// The trained members (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

  /// Total rows used to fit all members (Table VI "#Sample").
  std::size_t TotalTrainingRows() const { return total_training_rows_; }

 private:
  SmoteBaggingConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  VotingEnsemble ensemble_;
  IterationCallback callback_;
  std::size_t total_training_rows_ = 0;
};

}  // namespace spe

#endif  // SPE_IMBALANCE_SMOTE_BAGGING_H_
