#include "spe/imbalance/balance_cascade.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/rng.h"
#include "spe/kernels/flat_forest.h"

namespace spe {

BalanceCascade::BalanceCascade(const BalanceCascadeConfig& config)
    : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

BalanceCascade::BalanceCascade(const BalanceCascadeConfig& config,
                               std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
}

void BalanceCascade::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  ensemble_ = VotingEnsemble();
  Rng rng(config_.seed);
  // Row-major views have no parent matrix to index into; materialize
  // once and run the cascade of index selections against the copy.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  }
  // Parent-absolute rows of each class; the cascade only ever shuffles
  // and prunes these index sets — no row is copied again.
  std::vector<std::size_t> pos_abs(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos_abs[i] = base.RowIndex(pos[i]);
  std::vector<std::size_t> neg_abs(neg.size());
  for (std::size_t i = 0; i < neg.size(); ++i) neg_abs[i] = base.RowIndex(neg[i]);

  // Per-iteration pool keep ratio so the pool lands at ~|P| when the
  // last member trains.
  const double keep_ratio =
      config_.n_estimators <= 1
          ? 1.0
          : std::pow(static_cast<double>(pos.size()) /
                         static_cast<double>(neg.size()),
                     1.0 / static_cast<double>(config_.n_estimators - 1));

  // pool holds positions into `neg_abs` that are still candidates.
  std::vector<std::size_t> pool(neg_abs.size());
  std::iota(pool.begin(), pool.end(), std::size_t{0});

  std::vector<std::size_t> subset_abs;
  std::vector<std::size_t> pool_abs;
  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    // Balanced subset: all minority + |P| samples from the current pool,
    // expressed as an indexed view (zero feature bytes moved).
    const std::size_t take = std::min(pool.size(), pos.size());
    subset_abs.assign(pos_abs.begin(), pos_abs.end());
    subset_abs.reserve(pos_abs.size() + take);
    for (std::size_t i : rng.SampleWithoutReplacement(pool.size(), take)) {
      subset_abs.push_back(neg_abs[pool[i]]);
    }
    const DatasetView subset = base.WithIndices(subset_abs);

    std::unique_ptr<Classifier> member = base_prototype_->Clone();
    member->Reseed(config_.seed + 104729 * (m + 1));
    member->Fit(subset);
    ensemble_.Add(std::move(member));
    if (callback_) callback_(IterationInfo{m + 1, ensemble_, subset});
    if (m + 1 == config_.n_estimators) break;

    // Discard the pool samples the ensemble classifies best (lowest
    // predicted positive probability), keeping the hard remainder.
    const std::size_t target_size = std::max(
        pos.size(), static_cast<std::size_t>(
                        std::ceil(static_cast<double>(pool.size()) * keep_ratio)));
    if (target_size >= pool.size()) continue;

    pool_abs.resize(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) pool_abs[i] = neg_abs[pool[i]];
    const std::vector<double> probs =
        ensemble_.PredictProba(base.WithIndices(pool_abs));
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Hardest (highest probability of being positive) first.
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return probs[a] > probs[b];
    });
    std::vector<std::size_t> next_pool;
    next_pool.reserve(target_size);
    for (std::size_t i = 0; i < target_size; ++i) {
      next_pool.push_back(pool[order[i]]);
    }
    pool = std::move(next_pool);
  }
}

double BalanceCascade::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> BalanceCascade::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

void BalanceCascade::AccumulateProbaInto(const DatasetView& data,
                                         std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool BalanceCascade::LowerToFlat(kernels::FlatProgram& program,
                                 kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* BalanceCascade::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> BalanceCascade::Clone() const {
  return std::make_unique<BalanceCascade>(config_, base_prototype_->Clone());
}

std::string BalanceCascade::Name() const {
  std::ostringstream os;
  os << "Cascade" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
