#ifndef SPE_IMBALANCE_EASY_ENSEMBLE_H_
#define SPE_IMBALANCE_EASY_ENSEMBLE_H_

#include <memory>
#include <string>

#include "spe/imbalance/under_bagging.h"

namespace spe {

/// EasyEnsemble (Liu, Wu & Zhou, 2009): UnderBagging whose default base
/// model is an AdaBoost classifier — n independent AdaBoost models, each
/// trained on a random balanced subset, with averaged outputs. With any
/// other base it degenerates to UnderBagging, which is exactly why the
/// paper drops Easy from the C4.5 comparison of Table VI.
class EasyEnsemble final : public UnderBagging {
 public:
  /// Default base: AdaBoost with 10 stages of shallow trees.
  explicit EasyEnsemble(const UnderBaggingConfig& config = {});
  EasyEnsemble(const UnderBaggingConfig& config,
               std::unique_ptr<Classifier> base_prototype);

  std::unique_ptr<Classifier> Clone() const override;

 protected:
  std::string Prefix() const override { return "Easy"; }
};

}  // namespace spe

#endif  // SPE_IMBALANCE_EASY_ENSEMBLE_H_
