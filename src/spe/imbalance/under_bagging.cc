#include "spe/imbalance/under_bagging.h"

#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/rng.h"
#include "spe/kernels/flat_forest.h"

namespace spe {

UnderBagging::UnderBagging(const UnderBaggingConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  base_prototype_ = std::make_unique<DecisionTree>(tree_config);
}

UnderBagging::UnderBagging(const UnderBaggingConfig& config,
                           std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ != nullptr);
}

void UnderBagging::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  ensemble_ = VotingEnsemble();
  Rng rng(config_.seed);
  // Row-major views have no parent matrix to index into; materialize
  // once and run every per-member selection against the copy.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  }
  const std::size_t bag_majority = std::min(pos.size(), neg.size());

  // Each member fits through an indexed view: all minority rows, then
  // the drawn majority rows — the same subset the materializing path
  // used to build, with zero feature bytes moved.
  std::vector<std::size_t> subset_abs;
  subset_abs.reserve(pos.size() + bag_majority);
  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    subset_abs.clear();
    for (std::size_t p : pos) subset_abs.push_back(base.RowIndex(p));
    for (std::size_t i : rng.SampleWithoutReplacement(neg.size(), bag_majority)) {
      subset_abs.push_back(base.RowIndex(neg[i]));
    }
    const DatasetView subset = base.WithIndices(subset_abs);
    std::unique_ptr<Classifier> member = base_prototype_->Clone();
    member->Reseed(config_.seed + 104729 * (m + 1));
    member->Fit(subset);
    ensemble_.Add(std::move(member));
    if (callback_) callback_(IterationInfo{m + 1, ensemble_, subset});
  }
}

double UnderBagging::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> UnderBagging::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

void UnderBagging::AccumulateProbaInto(const DatasetView& data,
                                       std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool UnderBagging::LowerToFlat(kernels::FlatProgram& program,
                               kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* UnderBagging::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> UnderBagging::Clone() const {
  return std::make_unique<UnderBagging>(config_, base_prototype_->Clone());
}

std::string UnderBagging::Name() const {
  std::ostringstream os;
  os << Prefix() << config_.n_estimators;
  return os.str();
}

}  // namespace spe
