#ifndef SPE_IMBALANCE_UNDER_BAGGING_H_
#define SPE_IMBALANCE_UNDER_BAGGING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/training_observer.h"
#include "spe/kernels/program.h"

namespace spe {

struct UnderBaggingConfig {
  std::size_t n_estimators = 10;
  std::uint64_t seed = 0;
};

/// UnderBagging (Barandela et al., 2003): every member trains on an
/// independently drawn balanced subset (all minority + |P| random
/// majority) and the ensemble averages probabilities. EasyEnsemble is
/// exactly this with an AdaBoost base (§VI-C.2 of the paper).
class UnderBagging : public Classifier,
                     public kernels::FlatCompilable,
                     public kernels::FlatScorable {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit UnderBagging(const UnderBaggingConfig& config = {});
  UnderBagging(const UnderBaggingConfig& config,
               std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  void set_iteration_callback(IterationCallback callback) {
    callback_ = std::move(callback);
  }
  std::size_t NumMembers() const { return ensemble_.size(); }

  /// The trained members (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

 protected:
  /// Display name prefix; EasyEnsemble overrides it to "Easy".
  virtual std::string Prefix() const { return "UnderBagging"; }

  const UnderBaggingConfig& config() const { return config_; }
  const Classifier& base_prototype() const { return *base_prototype_; }

 private:
  UnderBaggingConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  VotingEnsemble ensemble_;
  IterationCallback callback_;
};

}  // namespace spe

#endif  // SPE_IMBALANCE_UNDER_BAGGING_H_
