#ifndef SPE_IMBALANCE_BALANCE_CASCADE_H_
#define SPE_IMBALANCE_BALANCE_CASCADE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/training_observer.h"
#include "spe/kernels/program.h"

namespace spe {

struct BalanceCascadeConfig {
  std::size_t n_estimators = 10;
  std::uint64_t seed = 0;
};

/// BalanceCascade (Liu, Wu & Zhou, 2009): like UnderBagging, but after
/// each iteration the majority pool is shrunk by discarding the samples
/// the current ensemble already classifies most confidently, so later
/// members see progressively harder data. The pool contracts by the
/// factor (|P|/|N|)^(1/(n-1)) per iteration, reaching |P| at the last.
///
/// This is the paper's closest prior art: §III and §VI-A.3 show how
/// keeping *only* the hard remainder over-weights outliers in late
/// iterations — the failure mode SPE's trivial-sample "skeleton" avoids.
class BalanceCascade final : public Classifier,
                             public kernels::FlatCompilable,
                             public kernels::FlatScorable {
 public:
  /// Default base model: a depth-10 decision tree.
  explicit BalanceCascade(const BalanceCascadeConfig& config = {});
  BalanceCascade(const BalanceCascadeConfig& config,
                 std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  void set_iteration_callback(IterationCallback callback) {
    callback_ = std::move(callback);
  }
  std::size_t NumMembers() const { return ensemble_.size(); }

  /// The trained members (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

 private:
  BalanceCascadeConfig config_;
  std::unique_ptr<Classifier> base_prototype_;
  VotingEnsemble ensemble_;
  IterationCallback callback_;
};

}  // namespace spe

#endif  // SPE_IMBALANCE_BALANCE_CASCADE_H_
