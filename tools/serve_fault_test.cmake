# Fault-injected end-to-end checks of the serving robustness features,
# run by ctest (`cmake -P`, no shell needed):
#   1. train a tiny model bundle with spe_cli
#   2. corrupted / truncated artifacts must be rejected with a clear error
#      and the corrupt-artifact exit code (4, spe/common/exit_codes.h)
#   3. a legacy (headerless) artifact still serves, with a warning,
#      given --num-features
#   4. SPE_FAULTS=score_delay_ms + --default-deadline-ms: every request
#      expires in the queue and comes back DEADLINE_EXCEEDED, unscored
#   5. SPE_FAULTS=score_delay_ms + watermark flags: backlog builds behind
#      the slowed worker and responses are marked "degraded":true
#   6. flag-parsing hardening: duplicate flags and garbage values are
#      usage errors, not silently misread config

foreach(var SPE_CLI SPE_SERVE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/serve_fault_test)
file(MAKE_DIRECTORY ${dir})

# ---- 1. train a model bundle ------------------------------------------
set(csv "")
foreach(i RANGE 0 39)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "-${a}.5,-${b}.75,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --model ${dir}/m.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli train failed (${rc}): ${out} ${err}")
endif()

file(READ ${dir}/m.model artifact)
file(WRITE ${dir}/one_row.txt "1.5,0.25\n")

# ---- 2a. bit-flipped payload is rejected ------------------------------
# The bundle is text; swapping the final payload byte keeps the length
# (so only the checksum can notice) and must trip the CRC verification.
string(LENGTH "${artifact}" len)
math(EXPR head_len "${len} - 1")
string(SUBSTRING "${artifact}" 0 ${head_len} head)
string(SUBSTRING "${artifact}" ${head_len} 1 last_char)
if(last_char STREQUAL "0")
  file(WRITE ${dir}/corrupt.model "${head}1")
else()
  file(WRITE ${dir}/corrupt.model "${head}0")
endif()

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/corrupt.model --stdio
  INPUT_FILE ${dir}/one_row.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR
    "corrupted artifact must exit 4 (corrupt artifact), got ${rc}: ${out}")
endif()
if(NOT err MATCHES "model artifact corrupted")
  message(FATAL_ERROR "corruption not reported clearly: ${err}")
endif()

# ---- 2b. truncated payload is rejected --------------------------------
math(EXPR trunc_len "${len} - 20")
string(SUBSTRING "${artifact}" 0 ${trunc_len} truncated)
file(WRITE ${dir}/truncated.model "${truncated}")

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/truncated.model --stdio
  INPUT_FILE ${dir}/one_row.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR
    "truncated artifact must exit 4 (corrupt artifact), got ${rc}: ${out}")
endif()
if(NOT err MATCHES "model artifact truncated")
  message(FATAL_ERROR "truncation not reported clearly: ${err}")
endif()

# ---- 3. legacy headerless artifact loads with a warning ---------------
# Stripping the header lines (the bundle header plus the v3
# hardness_histogram line) leaves a bare spe-model stream, the
# pre-bundle artifact shape.
string(FIND "${artifact}" "\n" eol)
math(EXPR after_header "${eol} + 1")
string(SUBSTRING "${artifact}" ${after_header} -1 tail)
string(FIND "${tail}" "\n" eol2)
math(EXPR payload_start "${after_header} + ${eol2} + 1")
string(SUBSTRING "${artifact}" ${payload_start} -1 legacy)
file(WRITE ${dir}/legacy.model "${legacy}")

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/legacy.model --num-features 2 --stdio
  INPUT_FILE ${dir}/one_row.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "legacy artifact failed to serve (${rc}): ${err}")
endif()
if(NOT out MATCHES "^[0-9.eE+-]+")
  message(FATAL_ERROR "legacy artifact gave no score: ${out}")
endif()
if(NOT err MATCHES "without an integrity checksum")
  message(FATAL_ERROR "legacy load did not warn: ${err}")
endif()

# ---- 4. injected scoring delay expires queued deadlines ---------------
# The worker sleeps 200ms after popping each batch (before deadline
# triage), so a 20ms default deadline is guaranteed to have expired by
# the time the request is triaged — no timing luck involved.
file(WRITE ${dir}/deadline_requests.txt
  "1.5,0.25\n-2.5,-1.75\n{\"id\":9,\"features\":[1.5,0.25]}\n")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SPE_FAULTS=score_delay_ms=200
    ${SPE_SERVE} --model ${dir}/m.model --stdio --default-deadline-ms 20
  INPUT_FILE ${dir}/deadline_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "deadline run failed (${rc}): ${err}")
endif()
string(REGEX REPLACE "\n$" "" trimmed "${out}")
string(REPLACE "\n" ";" lines "${trimmed}")
foreach(line IN LISTS lines)
  if(NOT line MATCHES "DEADLINE_EXCEEDED")
    message(FATAL_ERROR "expected every response to expire, got: ${line}")
  endif()
endforeach()
list(LENGTH lines n)
if(NOT n EQUAL 3)
  message(FATAL_ERROR "expected 3 responses, got ${n}: ${out}")
endif()
if(NOT err MATCHES "\"deadline_expired\":3")
  message(FATAL_ERROR "stats did not count expirations: ${err}")
endif()

# ---- 5. backlog behind a slowed worker engages degradation ------------
# One worker, one row per batch, 50ms injected delay per batch: the
# remaining requests are all queued before the first sleep ends, so
# every pop after the first sees a backlog over the high watermark.
set(json_requests "")
foreach(i RANGE 0 9)
  string(APPEND json_requests "{\"id\":${i},\"features\":[1.5,0.25]}\n")
endforeach()
file(WRITE ${dir}/degrade_requests.txt "${json_requests}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SPE_FAULTS=score_delay_ms=50
    ${SPE_SERVE} --model ${dir}/m.model --stdio
    --workers 1 --max-batch 1 --max-delay-us 0
    --degrade-high 2 --degrade-low 1 --degrade-prefix 1
  INPUT_FILE ${dir}/degrade_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "degrade run failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "\"degraded\":true")
  message(FATAL_ERROR "no response was marked degraded: ${out}")
endif()
if(NOT err MATCHES "\"degraded_batches\":[1-9]")
  message(FATAL_ERROR "stats did not count degraded batches: ${err}")
endif()

# ---- 6. flag-parsing hardening ----------------------------------------
# Usage errors are exit code 2, distinct from I/O (3) and corrupt
# artifacts (4) so a supervisor can tell a typo from a bad deploy.
execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/m.model --model ${dir}/m.model --stdio
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "duplicate flag --model")
  message(FATAL_ERROR "duplicate flag not rejected with exit 2: rc=${rc} ${err}")
endif()

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/m.model --port banana
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--port expects an integer")
  message(FATAL_ERROR "garbage --port not rejected with exit 2: rc=${rc} ${err}")
endif()

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 10abc
    --model ${dir}/ignored.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--n expects an integer")
  message(FATAL_ERROR "garbage --n not rejected with exit 2: rc=${rc} ${err}")
endif()

# Missing data file: an I/O failure (3), not a generic crash.
execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/no_such_file.csv --n 5
    --model ${dir}/ignored.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 3 OR NOT err MATCHES "cannot open")
  message(FATAL_ERROR "missing data must exit 3 (I/O): rc=${rc} ${err}")
endif()

message(STATUS "serve fault-injection pipeline ok")
