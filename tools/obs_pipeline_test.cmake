# End-to-end check of the observability pipeline, run by ctest:
#   1. spe_cli train -> model bundle (same tiny set as the serve test)
#   2. pipe 4 score lines + `!stats` through `spe_serve --stdio
#      --metrics-dump`
#   3. assert the exposition covers the serve and process metric
#      families with the exact values this session implies: 5 requests
#      parsed, 4 scored rows, nothing shed, queue drained
#   4. assert the --metrics-dump file was written and is a superset
#      snapshot (same families, taken at drain)
# Driven with `cmake -P` so it needs no shell beyond what CMake provides.

foreach(var SPE_CLI SPE_SERVE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/obs_pipeline_test)
file(MAKE_DIRECTORY ${dir})

set(csv "")
foreach(i RANGE 0 39)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "-${a}.5,-${b}.75,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --model ${dir}/m.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli train failed (${rc}): ${out} ${err}")
endif()

# 4 score requests, then the metrics exposition. The writer thread is
# FIFO, so by the time `!stats` is answered all 4 scores are recorded —
# requests_total must read exactly 4 with zero shed.
file(WRITE ${dir}/requests.txt
  "1.5,0.25\n-2.5,-1.75\n{\"id\":7,\"features\":[1.5,0.25]}\n0.5,0.5\n!stats\n")

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/m.model --stdio
          --metrics-dump ${dir}/metrics_dump.txt
  INPUT_FILE ${dir}/requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_serve --stdio failed (${rc}): ${err}")
endif()

# --- the !stats exposition -------------------------------------------
# Serve family: exact counters for this session.
foreach(expected
    "spe_serve_requests_total 4"
    "spe_serve_shed_total 0"
    "spe_serve_deadline_expired_total 0"
    "spe_serve_degraded_batches_total 0"
    "spe_serve_queue_depth 0"
    "spe_serve_latency_us_count 4"
    "spe_serve_batch_rows_total 4")
  if(NOT out MATCHES "${expected}\n")
    message(FATAL_ERROR "exposition missing '${expected}':\n${out}")
  endif()
endforeach()
# Process family: thread-pool gauges/counters and the span aggregates.
foreach(family
    "# TYPE spe_serve_requests_total counter"
    "# TYPE spe_serve_latency_us histogram"
    "spe_serve_latency_us_bucket"
    "spe_threads "
    "spe_parallel_loops_total"
    "spe_spans_total"
    "spe_span_count{span=\"serve.score_batch\"}"
    "# EOF")
  if(NOT out MATCHES "${family}")
    message(FATAL_ERROR "exposition missing '${family}':\n${out}")
  endif()
endforeach()

# --- the drain-time dump ---------------------------------------------
if(NOT EXISTS ${dir}/metrics_dump.txt)
  message(FATAL_ERROR "--metrics-dump did not write ${dir}/metrics_dump.txt")
endif()
file(READ ${dir}/metrics_dump.txt dump)
foreach(expected
    "spe_serve_requests_total 4"
    "spe_serve_shed_total 0"
    "# EOF")
  if(NOT dump MATCHES "${expected}")
    message(FATAL_ERROR "metrics dump missing '${expected}':\n${dump}")
  endif()
endforeach()

message(STATUS "obs pipeline ok: requests_total=4, zero shed, dump written")
