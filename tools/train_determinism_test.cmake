# Cross-process check of the training determinism contract, run by
# ctest: the model artifact and the prediction output must be
# byte-identical whether the process trains with SPE_THREADS=1 or
# SPE_THREADS=8.
#
#   1. write a ~800-row imbalanced CSV (big enough that scoring and the
#      hardness updates actually fan out at 8 threads)
#   2. spe_cli train under SPE_THREADS=1 and SPE_THREADS=8
#   3. byte-compare the two model bundles
#   4. spe_cli predict --scores-only with each artifact under each
#      thread count; byte-compare all score files

foreach(var SPE_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/train_determinism_test)
file(MAKE_DIRECTORY ${dir})

# Deterministic pseudo-random-looking features from integer arithmetic
# (cmake -P has no RNG): x = (i*37 % 83), y = (i*53 % 97), shifted per
# class so the classes overlap but are learnable. 1 minority : 7
# majority over 800 rows.
set(csv "")
foreach(i RANGE 0 799)
  math(EXPR parity "${i} % 8")
  math(EXPR a "(${i} * 37) % 83")
  math(EXPR b "(${i} * 53) % 97")
  math(EXPR frac_a "(${i} * 29) % 10")
  math(EXPR frac_b "(${i} * 31) % 10")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.${frac_a},${b}.${frac_b},1\n")
  else()
    math(EXPR a "${a} - 20")
    math(EXPR b "${b} - 30")
    string(APPEND csv "${a}.${frac_a},${b}.${frac_b},0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

function(run_cli threads)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SPE_THREADS=${threads}
            ${SPE_CLI} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "spe_cli ${ARGN} failed under SPE_THREADS=${threads} (${rc}): "
      "${out} ${err}")
  endif()
endfunction()

run_cli(1 train --data ${dir}/train.csv --n 10 --seed 3
        --model ${dir}/m_1t.model)
run_cli(8 train --data ${dir}/train.csv --n 10 --seed 3
        --model ${dir}/m_8t.model)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/m_1t.model
          ${dir}/m_8t.model
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "model artifacts differ between SPE_THREADS=1 and SPE_THREADS=8 — "
    "the training determinism contract is broken")
endif()

# Scoring: every (artifact, thread count) combination must emit the same
# bytes. Scores are printed at max_digits10, so byte equality is bit
# equality of the probabilities.
function(run_predict threads model out)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SPE_THREADS=${threads}
            ${SPE_CLI} predict --data ${dir}/train.csv --model ${model}
            --scores-only
    RESULT_VARIABLE rc OUTPUT_FILE ${out} ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "predict failed under SPE_THREADS=${threads}: ${err}")
  endif()
endfunction()

run_predict(1 ${dir}/m_1t.model ${dir}/scores_1t.txt)
run_predict(8 ${dir}/m_1t.model ${dir}/scores_8t.txt)
run_predict(8 ${dir}/m_8t.model ${dir}/scores_8t_model8.txt)

foreach(other scores_8t scores_8t_model8)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/scores_1t.txt
            ${dir}/${other}.txt
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "prediction output ${other} differs from the single-threaded run — "
      "the scoring determinism contract is broken")
  endif()
endforeach()

message(STATUS "train determinism ok: artifacts and scores byte-identical "
               "for SPE_THREADS=1 vs 8")
