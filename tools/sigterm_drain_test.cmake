# SIGTERM drain check for spe_serve --stdio, run by ctest. An
# orchestrator stops a service with SIGTERM, not Ctrl-C; both must get
# the same graceful drain. The scenario needs a live process to signal,
# so the session runs under bash with the server's stdin on a fifo that
# is *held open* the whole time — the only way the server can exit is
# the signal, never EOF:
#
#   1. train a tiny model, start spe_serve --stdio reading the fifo
#   2. write one scoring request, wait for its response
#   3. kill -TERM the server while its stdin is still open
#   4. the server must exit 0, announce the drain on stderr, and print
#      the final stats snapshot counting the answered request

foreach(var SPE_CLI SPE_SERVE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  message(FATAL_ERROR "bash is required for the SIGTERM drain test")
endif()

set(dir ${WORK_DIR}/sigterm_drain_test)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

set(csv "")
foreach(i RANGE 0 39)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "-${a}.5,-${b}.75,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5
          --model ${dir}/m.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli train failed (${rc}): ${out} ${err}")
endif()

file(WRITE ${dir}/drain.sh
[=[#!/bin/bash
set -u
serve="$1"; dir="$2"
cd "$dir" || exit 90
rm -f in.fifo
mkfifo in.fifo || exit 90

"$serve" --model m.model --stdio --workers 1 \
  < in.fifo > out.txt 2> err.txt &
pid=$!
# Watchdog: a hung drain must fail the test, not wedge ctest. The
# redirections detach it from the harness pipes — an orphaned sleep
# holding stdout open would make cmake wait out the full timeout.
( sleep 60; kill -9 "$pid" 2>/dev/null ) < /dev/null > /dev/null 2>&1 &
watchdog=$!

# Opening the write end unblocks the server's open of the read end;
# keeping fd 3 open for the rest of the script is what guarantees the
# server never sees EOF — only the signal can stop it.
exec 3> in.fifo
echo "1.5,0.25" >&3

for _ in $(seq 1 300); do
  [ -s out.txt ] && break
  sleep 0.1
done
if ! [ -s out.txt ]; then
  kill -9 "$pid" 2>/dev/null
  echo "server never answered the request" >&2
  exit 91
fi

kill -TERM "$pid"
wait "$pid"; rc=$?
kill "$watchdog" 2>/dev/null
exec 3>&-

if [ "$rc" -ne 0 ]; then
  echo "server exited $rc after SIGTERM (wanted 0)" >&2
  cat err.txt >&2
  exit 92
fi
if ! grep -q "received SIGTERM, draining" err.txt; then
  echo "no drain announcement on stderr:" >&2
  cat err.txt >&2
  exit 93
fi
if ! grep -q '"rows":1' err.txt; then
  echo "final stats snapshot missing the answered request:" >&2
  cat err.txt >&2
  exit 94
fi
exit 0
]=])

execute_process(
  COMMAND ${BASH_PROGRAM} ${dir}/drain.sh ${SPE_SERVE} ${dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "SIGTERM drain scenario failed (${rc}): ${out} ${err}")
endif()

message(STATUS "SIGTERM drain ok: stdio server drained and exited 0 "
               "with its stdin still open")
