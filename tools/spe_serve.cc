// spe_serve — online scoring server over a saved model.
//
//   spe_serve --model FILE [--stdio | --port P] [--host ADDR]
//             [--num-features F] [--max-batch N] [--max-delay-us U]
//             [--workers W] [--queue-capacity C] [--overflow block|shed]
//             [--default-deadline-ms D] [--degrade-high H --degrade-low L
//              --degrade-prefix K] [--max-connections M]
//             [--stats-interval-ms MS] [--metrics-dump FILE]
//
// Speaks the newline-delimited CSV/JSON protocol of spe/serve/
// line_protocol.h. --stdio serves exactly one "connection" on
// stdin/stdout (what tests and shell pipelines use); --port accepts
// concurrent TCP connections (up to --max-connections), each handled by
// a reader thread (parse + submit) and a writer thread (responses in
// request order), all funneling into one shared BatchScorer so
// cross-connection traffic coalesces into common micro-batches.
//
// Robustness: requests may carry "deadline_ms" (JSON) or inherit
// --default-deadline-ms; a request that is still queued past its
// deadline is answered DEADLINE_EXCEEDED without being scored. Under
// backlog past --degrade-high, batches are scored with only the first
// --degrade-prefix ensemble members (responses marked "degraded":true)
// until the backlog drains to --degrade-low.
//
// Shutdown drains: on SIGINT/SIGTERM (or stdin EOF) the listener closes,
// connections stop reading, every accepted request is still scored and
// written, and a final stats snapshot goes to stderr.

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "spe/common/parse.h"
#include "spe/io/model_io.h"
#include "spe/obs/metrics.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/server_stats.h"

namespace {

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(
      stderr,
      "usage: spe_serve --model FILE [--stdio | --port P] [options]\n"
      "  --model FILE          saved model (spe_cli train --model FILE)\n"
      "  --stdio               serve one session on stdin/stdout\n"
      "  --port P              listen for TCP connections on port P\n"
      "  --host ADDR           bind address (default 127.0.0.1)\n"
      "  --num-features F      row width for legacy artifacts whose file\n"
      "                        has no schema header (bundles carry it)\n"
      "  --max-batch N         rows per model dispatch (default 256)\n"
      "  --max-delay-us U      micro-batch fill deadline (default 200)\n"
      "  --workers W           scoring threads (default: hardware)\n"
      "  --queue-capacity C    pending-request bound (default 4096)\n"
      "  --overflow block|shed backpressure policy (default block)\n"
      "  --default-deadline-ms D\n"
      "                        deadline for requests that do not carry\n"
      "                        \"deadline_ms\"; expired-in-queue requests\n"
      "                        get DEADLINE_EXCEEDED (0 = none, default)\n"
      "  --degrade-high H      backlog at which scoring degrades to an\n"
      "                        ensemble prefix (0 = never, default)\n"
      "  --degrade-low L       backlog at which full scoring resumes\n"
      "                        (default 0; must be < H)\n"
      "  --degrade-prefix K    ensemble members used while degraded\n"
      "                        (default 1)\n"
      "  --max-connections M   concurrent TCP connections; further\n"
      "                        connects are refused with an error line\n"
      "                        (default 256, 0 = unlimited)\n"
      "  --stats-interval-ms M periodic stats line to stderr (0 = off,\n"
      "                        default 10000 for --port, 0 for --stdio)\n"
      "  --metrics-dump FILE   write the final metrics exposition to FILE\n"
      "                        after the server drains\n"
      "protocol: one request per line — CSV features (`0.2,1.5`) or JSON\n"
      "(`{\"id\":1,\"features\":[0.2,1.5],\"deadline_ms\":50}`); `STATS`\n"
      "returns a one-line stats snapshot; `!stats` returns the metrics\n"
      "exposition (multi-line, ends with `# EOF`); responses come back in\n"
      "request order. Degraded-mode JSON responses carry "
      "\"degraded\":true.\n"
      "fault injection: set SPE_FAULTS=score_delay_ms=..,"
      "model_io_fail_rate=..,seed=.. (docs/serving.md)\n");
  std::exit(2);
}

/// Checked flag accessor: missing -> fallback; present but not an
/// integer in [min, max] -> usage error (atoi-style silent garbage is
/// exactly what this replaces).
long GetIntFlag(const std::map<std::string, std::string>& flags,
                const std::string& key, long fallback, long min, long max) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = spe::ParseInt64(it->second);
  if (!v || *v < min || *v > max) {
    const std::string message = "--" + key + " expects an integer in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "], got '" + it->second +
                                "'";
    Usage(message.c_str());
  }
  return static_cast<long>(*v);
}

double GetDoubleFlag(const std::map<std::string, std::string>& flags,
                     const std::string& key, double fallback, double min) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = spe::ParseFiniteDouble(it->second);
  if (!v || *v < min) {
    const std::string message = "--" + key + " expects a number >= " +
                                std::to_string(min) + ", got '" + it->second +
                                "'";
    Usage(message.c_str());
  }
  return *v;
}

std::atomic<int> g_listen_fd{-1};

void HandleStopSignal(int /*sig*/) {
  // close() is async-signal-safe; closing the listener pops accept()
  // out with an error, which the accept loop treats as "stop".
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) close(fd);
}

/// Reads one newline-terminated request line into `line`, enforcing the
/// protocol's line-length cap without ever buffering an oversized line
/// whole: the overflow is consumed and discarded in fixed-size chunks.
/// Returns false on EOF with nothing read; sets `oversized` when the
/// line exceeded the cap (its content is then meaningless).
bool ReadBoundedLine(std::FILE* in, std::string& line, bool& oversized) {
  line.clear();
  oversized = false;
  char chunk[4096];
  while (std::fgets(chunk, sizeof(chunk), in) != nullptr) {
    const std::size_t len = std::strlen(chunk);
    const bool eol = len > 0 && chunk[len - 1] == '\n';
    if (!oversized) {
      line.append(chunk, len);
      if (line.size() > spe::kMaxRequestLineBytes + 2) {
        // +2: allow the CR/LF of a line exactly at the cap.
        oversized = true;
        line.clear();
      }
    }
    if (eol) return true;
  }
  return oversized || !line.empty();
}

/// One protocol session on a FILE* pair. The calling thread reads,
/// parses and submits; a writer thread emits responses in request
/// order. Returns when `in` hits EOF and every response is written.
/// `default_deadline_ms` <= 0 means "no deadline unless the request
/// sets one".
void ServeSession(std::FILE* in, std::FILE* out, spe::BatchScorer& scorer,
                  double default_deadline_ms) {
  struct Pending {
    spe::ServeRequest request;
    std::future<spe::ScoreResult> future;  // valid only for kScore
  };
  std::deque<Pending> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool done_reading = false;

  std::thread writer([&] {
    for (;;) {
      Pending item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) break;
        item = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the backlog bound
      std::string response;
      switch (item.request.kind) {
        case spe::RequestKind::kScore:
          try {
            const spe::ScoreResult result = item.future.get();
            response = spe::FormatScoreResponse(item.request, result.proba,
                                                result.degraded);
          } catch (const std::exception& e) {
            response = spe::FormatErrorResponse(item.request, e.what());
          }
          break;
        case spe::RequestKind::kStats:
          response = spe::ToJson(scorer.stats().Snapshot());
          break;
        case spe::RequestKind::kMetrics:
          // Multi-line exposition; its "# EOF" line is the framing the
          // client watches for, the writer adds the final newline.
          response = spe::obs::MetricsRegistry::Global().RenderText();
          while (!response.empty() && response.back() == '\n') {
            response.pop_back();
          }
          break;
        case spe::RequestKind::kInvalid:
          response = spe::FormatErrorResponse(item.request,
                                              item.request.error);
          break;
        case spe::RequestKind::kEmpty:
          continue;  // never queued
      }
      std::fputs(response.c_str(), out);
      std::fputc('\n', out);
      std::fflush(out);
    }
  });

  std::string line;
  bool oversized = false;
  while (ReadBoundedLine(in, line, oversized)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    Pending item;
    if (oversized) {
      item.request.kind = spe::RequestKind::kInvalid;
      item.request.error = "request line exceeds " +
                           std::to_string(spe::kMaxRequestLineBytes) +
                           " bytes";
    } else {
      item.request = spe::ParseRequestLine(line);
    }
    if (item.request.kind == spe::RequestKind::kEmpty) continue;
    if (item.request.kind == spe::RequestKind::kScore) {
      if (item.request.features.size() != scorer.num_features()) {
        item.request.kind = spe::RequestKind::kInvalid;
        item.request.error =
            "expected " + std::to_string(scorer.num_features()) +
            " features, got " + std::to_string(item.request.features.size());
      } else {
        const double deadline_ms = item.request.deadline_ms >= 0
                                       ? item.request.deadline_ms
                                       : default_deadline_ms;
        auto deadline = spe::BatchScorer::kNoDeadline;
        if (item.request.deadline_ms >= 0 || default_deadline_ms > 0) {
          deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             deadline_ms));
        }
        item.future =
            scorer.Submit(std::move(item.request.features), deadline);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      // Bound the per-session response backlog so a client that writes
      // but never reads cannot grow memory without limit.
      cv.wait(lock, [&] { return pending.size() < 16384; });
      pending.push_back(std::move(item));
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done_reading = true;
  }
  cv.notify_all();
  writer.join();
}

int RunStdio(spe::BatchScorer& scorer, double default_deadline_ms) {
  ServeSession(stdin, stdout, scorer, default_deadline_ms);
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

int RunTcp(spe::BatchScorer& scorer, const std::string& host, int port,
           double default_deadline_ms, std::size_t max_connections) {
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad --host %s\n", host.c_str());
    return 1;
  }
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "spe_serve: listening on %s:%d\n", host.c_str(), port);

  // Session bookkeeping: `active` counts live session threads, which
  // run detached so a finished connection costs nothing (the previous
  // design kept every joinable std::thread for the process lifetime).
  // Shutdown half-closes the open sockets and waits for active == 0 —
  // the same drain guarantee, without the unbounded vector.
  struct Sessions {
    std::mutex mu;
    std::condition_variable all_done;
    std::set<int> open_fds;
    std::size_t active = 0;
    std::uint64_t refused = 0;
  } sessions;

  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by the signal handler
    {
      std::lock_guard<std::mutex> lock(sessions.mu);
      if (max_connections > 0 && sessions.active >= max_connections) {
        ++sessions.refused;
        const char refusal[] = "ERR server at connection capacity\n";
        // Best-effort courtesy line; the refusal is the close() either way.
        (void)!write(fd, refusal, sizeof(refusal) - 1);
        close(fd);
        continue;
      }
      ++sessions.active;
      sessions.open_fds.insert(fd);
    }
    std::thread([fd, &scorer, &sessions, default_deadline_ms] {
      // Separate FILE streams for the two directions; each owns a dup
      // so fclose of one cannot yank the fd from under the other.
      std::FILE* in = fdopen(fd, "r");
      std::FILE* out = fdopen(dup(fd), "w");
      if (in != nullptr && out != nullptr) {
        ServeSession(in, out, scorer, default_deadline_ms);
      }
      if (in != nullptr) std::fclose(in);
      if (out != nullptr) std::fclose(out);
      {
        std::lock_guard<std::mutex> lock(sessions.mu);
        sessions.open_fds.erase(fd);
        --sessions.active;
      }
      sessions.all_done.notify_all();
    }).detach();
  }
  std::fprintf(stderr, "spe_serve: draining...\n");
  {
    // Stop the readers: half-close every open connection so the reader
    // sees EOF; in-flight requests still get their responses.
    std::unique_lock<std::mutex> lock(sessions.mu);
    for (int fd : sessions.open_fds) shutdown(fd, SHUT_RD);
    sessions.all_done.wait(lock, [&] { return sessions.active == 0; });
    if (sessions.refused > 0) {
      std::fprintf(stderr, "spe_serve: refused %llu connections at capacity\n",
                   static_cast<unsigned long long>(sessions.refused));
    }
  }
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) Usage(("unexpected argument: " + arg).c_str());
    const std::string key = arg.substr(2);
    std::string value = "1";
    if (key != "stdio") {
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      value = argv[++i];
    }
    // A silently ignored repeat is how a fat-fingered restart script
    // serves yesterday's queue capacity; make duplicates loud.
    if (!flags.emplace(key, value).second) {
      Usage(("duplicate flag --" + key).c_str());
    }
  }
  const auto get = [&](const std::string& k, const std::string& fallback) {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : it->second;
  };

  const std::string model_path = get("model", "");
  if (model_path.empty()) Usage("--model is required");
  const bool use_stdio = flags.count("stdio") > 0;
  const int port = static_cast<int>(GetIntFlag(flags, "port", 0, 1, 65535));
  if (use_stdio == (port > 0)) Usage("pass exactly one of --stdio / --port");

  spe::BatchScorerConfig config;
  config.max_batch_size = static_cast<std::size_t>(
      GetIntFlag(flags, "max-batch", 256, 1, 1 << 20));
  config.max_batch_delay_us = static_cast<std::size_t>(
      GetIntFlag(flags, "max-delay-us", 200, 0, 60'000'000));
  config.num_workers =
      static_cast<std::size_t>(GetIntFlag(flags, "workers", 0, 0, 4096));
  config.queue_capacity = static_cast<std::size_t>(
      GetIntFlag(flags, "queue-capacity", 4096, 1, 1 << 26));
  const std::string overflow = get("overflow", "block");
  if (overflow == "shed") {
    config.overflow = spe::OverflowPolicy::kShed;
  } else if (overflow != "block") {
    Usage("--overflow must be block or shed");
  }
  config.degrade_high_watermark = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-high", 0, 0, 1 << 26));
  config.degrade_low_watermark = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-low", 0, 0, 1 << 26));
  config.degrade_prefix = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-prefix", 1, 1, 1 << 20));
  if (config.degrade_high_watermark > 0 &&
      config.degrade_low_watermark >= config.degrade_high_watermark) {
    Usage("--degrade-low must be below --degrade-high");
  }
  const double default_deadline_ms =
      GetDoubleFlag(flags, "default-deadline-ms", 0.0, 0.0);
  const std::size_t max_connections = static_cast<std::size_t>(
      GetIntFlag(flags, "max-connections", 256, 0, 1 << 20));

  spe::ModelBundle bundle = spe::LoadModelBundleFromFile(model_path);
  // Bundles (spe_cli train output) record the row width; bare spe-model
  // artifacts predate the header and need --num-features.
  long num_features = GetIntFlag(flags, "num-features", 0, 1, 1 << 24);
  if (num_features <= 0) num_features = static_cast<long>(bundle.num_features);
  if (num_features <= 0) {
    Usage("model artifact has no schema header; pass --num-features");
  }

  spe::BatchScorer scorer(std::move(bundle.model),
                          static_cast<std::size_t>(num_features), config);
  const long interval_ms =
      GetIntFlag(flags, "stats-interval-ms", use_stdio ? 0 : 10000, 0,
                 86'400'000);
  std::unique_ptr<spe::StatsReporter> reporter;
  if (interval_ms > 0) {
    reporter = std::make_unique<spe::StatsReporter>(
        scorer.stats(), std::cerr, std::chrono::milliseconds(interval_ms));
  }
  const int rc = use_stdio
                     ? RunStdio(scorer, default_deadline_ms)
                     : RunTcp(scorer, get("host", "127.0.0.1"), port,
                              default_deadline_ms, max_connections);
  // Drained: every accepted request is counted, so the dump is final.
  const std::string dump_path = get("metrics-dump", "");
  if (!dump_path.empty()) {
    std::FILE* f = std::fopen(dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --metrics-dump %s\n",
                   dump_path.c_str());
      return 1;
    }
    const std::string text = spe::obs::MetricsRegistry::Global().RenderText();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return rc;
}
