// spe_serve — online scoring server over a saved model.
//
//   spe_serve --model FILE [--stdio | --port P] [--host ADDR]
//             [--num-features F] [--max-batch N] [--max-delay-us U]
//             [--workers W] [--queue-capacity C] [--overflow block|shed]
//             [--default-deadline-ms D] [--degrade-high H --degrade-low L
//              --degrade-prefix K] [--max-connections M]
//             [--stats-interval-ms MS] [--metrics-dump FILE]
//             [--shadow FILE] [--shadow-sample N]
//             [--drift-threshold PSI] [--drift-min-count N]
//             [--kernel-mode f64|f32|binned]
//
// Speaks the newline-delimited CSV/JSON protocol of spe/serve/
// line_protocol.h and the length-prefixed binary frame protocol of
// spe/serve/wire.h, negotiated per connection by the first byte (0xA6
// selects binary). --stdio serves exactly one text "connection" on
// stdin/stdout (what tests and shell pipelines use); --port serves
// concurrent TCP connections (up to --max-connections) on a
// single-threaded epoll event loop (spe/serve/event_loop.h) that
// funnels every connection into one shared BatchScorer, so
// cross-connection traffic coalesces into common micro-batches.
//
// Robustness: requests may carry "deadline_ms" (JSON) or inherit
// --default-deadline-ms; a request that is still queued past its
// deadline is answered DEADLINE_EXCEEDED without being scored. Under
// backlog past --degrade-high, batches are scored with only the first
// --degrade-prefix ensemble members (responses marked "degraded":true)
// until the backlog drains to --degrade-low.
//
// Model lifecycle: the scorer serves through a versioned model registry
// (spe/lifecycle/model_registry.h). A `!reload [PATH]` protocol line or
// a SIGHUP hot-swaps the served model: the candidate artifact is
// probed, loaded and kernel-compiled on a dedicated lifecycle thread,
// then atomically activated — in-flight requests finish on the old
// version, no request is dropped, and a bad candidate is refused with
// an ERR line while the old model keeps serving. --shadow loads a
// second version that re-scores a sample of live batches for
// prediction diffing, and models saved with a training hardness
// histogram (v3 bundles) get live drift detection (docs/lifecycle.md).
//
// Shutdown drains: on SIGINT/SIGTERM (or stdin EOF) the listener stops
// accepting, connections stop reading, every accepted request is still
// scored and written, and a final stats snapshot goes to stderr. Both
// signals behave identically in both --stdio and --port mode: they are
// handled on a dedicated signal thread (sigwait), so a SIGTERM from an
// orchestrator gets the same graceful drain as an interactive Ctrl-C.
//
// Exit codes follow spe/common/exit_codes.h: 0 ok (including a drained
// shutdown), 1 runtime error, 2 usage, 3 I/O failure, 4 corrupt
// artifact, 5 injected fault (docs/robustness.md).

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "spe/common/exit_codes.h"
#include "spe/common/parse.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/lifecycle/model_registry.h"
#include "spe/obs/metrics.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/event_loop.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/server_stats.h"

namespace {

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(
      stderr,
      "usage: spe_serve --model FILE [--stdio | --port P] [options]\n"
      "  --model FILE          saved model (spe_cli train --model FILE)\n"
      "  --stdio               serve one session on stdin/stdout\n"
      "  --port P              listen for TCP connections on port P\n"
      "  --host ADDR           bind address (default 127.0.0.1)\n"
      "  --num-features F      row width for legacy artifacts whose file\n"
      "                        has no schema header (bundles carry it)\n"
      "  --max-batch N         rows per model dispatch (default 256)\n"
      "  --max-delay-us U      micro-batch fill deadline (default 200)\n"
      "  --workers W           scoring threads (default: hardware)\n"
      "  --queue-capacity C    pending-request bound (default 4096)\n"
      "  --overflow block|shed backpressure policy (default block)\n"
      "  --default-deadline-ms D\n"
      "                        deadline for requests that do not carry\n"
      "                        \"deadline_ms\"; expired-in-queue requests\n"
      "                        get DEADLINE_EXCEEDED (0 = none, default)\n"
      "  --degrade-high H      backlog at which scoring degrades to an\n"
      "                        ensemble prefix (0 = never, default)\n"
      "  --degrade-low L       backlog at which full scoring resumes\n"
      "                        (default 0; must be < H)\n"
      "  --degrade-prefix K    ensemble members used while degraded\n"
      "                        (default 1)\n"
      "  --max-connections M   concurrent TCP connections; further\n"
      "                        connects are refused with an error line\n"
      "                        (default 256, 0 = unlimited)\n"
      "  --stats-interval-ms M periodic stats line to stderr (0 = off,\n"
      "                        default 10000 for --port, 0 for --stdio)\n"
      "  --metrics-dump FILE   write the final metrics exposition to FILE\n"
      "                        after the server drains (FILE must be\n"
      "                        writable at startup — fail fast, not after\n"
      "                        a day of traffic)\n"
      "  --shadow FILE         also load FILE as a shadow version: it\n"
      "                        scores a sample of live batches and the\n"
      "                        prediction diffs are exported as\n"
      "                        spe_lifecycle_shadow_* metrics\n"
      "  --shadow-sample N     shadow every Nth batch (default 8,\n"
      "                        0 disables shadow scoring)\n"
      "  --drift-threshold P   PSI above which hardness-distribution\n"
      "                        drift alerts (default 0.25)\n"
      "  --drift-min-count N   live rows required before a drift verdict\n"
      "                        (default 512)\n"
      "  --kernel-mode M       flat-kernel scoring representation: f64\n"
      "                        (default, bit-identical), f32 (float\n"
      "                        scoring, AUC-parity — stamped flat_f32 in\n"
      "                        !stats), or binned (uint8 quantized,\n"
      "                        bit-identical; falls back to f64 when the\n"
      "                        model cannot lower). Ignored when\n"
      "                        SPE_FLAT_KERNEL=0 disables the kernel\n"
      "                        (docs/performance.md)\n"
      "protocol: one request per line — CSV features (`0.2,1.5`) or JSON\n"
      "(`{\"id\":1,\"features\":[0.2,1.5],\"deadline_ms\":50}`); `STATS`\n"
      "returns a one-line stats snapshot; `!stats` returns the metrics\n"
      "exposition (multi-line, ends with `# EOF`); `!reload [PATH]`\n"
      "hot-swaps the served model to PATH (default: the --model artifact,\n"
      "re-read) and answers OK/ERR once the swap happened — in-flight\n"
      "requests finish on the old version, none are dropped; SIGHUP\n"
      "triggers the same reload of the --model path; responses come back\n"
      "in request order. Degraded-mode JSON responses carry "
      "\"degraded\":true.\n"
      "fault injection: set SPE_FAULTS=score_delay_ms=..,"
      "model_io_fail_rate=..,seed=.. (docs/serving.md)\n");
  std::exit(2);
}

/// Checked flag accessor: missing -> fallback; present but not an
/// integer in [min, max] -> usage error (atoi-style silent garbage is
/// exactly what this replaces).
long GetIntFlag(const std::map<std::string, std::string>& flags,
                const std::string& key, long fallback, long min, long max) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = spe::ParseInt64(it->second);
  if (!v || *v < min || *v > max) {
    const std::string message = "--" + key + " expects an integer in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "], got '" + it->second +
                                "'";
    Usage(message.c_str());
  }
  return static_cast<long>(*v);
}

double GetDoubleFlag(const std::map<std::string, std::string>& flags,
                     const std::string& key, double fallback, double min) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = spe::ParseFiniteDouble(it->second);
  if (!v || *v < min) {
    const std::string message = "--" + key + " expects a number >= " +
                                std::to_string(min) + ", got '" + it->second +
                                "'";
    Usage(message.c_str());
  }
  return *v;
}

// Signal plumbing. SIGINT/SIGTERM/SIGHUP are blocked in every thread
// (pthread_sigmask before any thread is spawned) and consumed by one
// dedicated signal thread via sigwait — no async-signal-safety puzzles,
// and SIGTERM gets the exact same graceful drain as SIGINT in both
// serving modes. SIGUSR1 keeps a handler, deliberately installed
// *without* SA_RESTART: its only job is to make the stdio reader's
// blocked read(2) return EINTR so fgets gives up.
std::atomic<int> g_listen_fd{-1};
std::atomic<bool> g_draining{false};
std::atomic<bool> g_sighup{false};

// The stdio reader registers itself so the signal thread can poke it.
pthread_t g_stdio_reader;
std::atomic<bool> g_stdio_reader_set{false};
std::atomic<bool> g_stdio_done{false};

void HandleWakeSignal(int /*sig*/) {
  // No-op by design: delivery alone interrupts the reader's read(2).
}

void SignalWaitLoop() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGHUP);
  for (;;) {
    int sig = 0;
    if (sigwait(&set, &sig) != 0) continue;
    if (sig == SIGHUP) {
      // Just a flag flip; the lifecycle thread polls it.
      g_sighup.store(true, std::memory_order_relaxed);
      continue;
    }
    // SIGINT / SIGTERM: one graceful drain. A repeat signal is ignored —
    // the drain already answers everything accepted, and exiting early
    // would drop those responses.
    if (g_draining.exchange(true)) continue;
    std::fprintf(stderr, "spe_serve: received %s, draining...\n",
                 sig == SIGTERM ? "SIGTERM" : "SIGINT");
    // TCP mode: shutdown (not close) pops the blocked accept() with an
    // error while keeping the fd valid for main to close; close() alone
    // would not wake a blocked accept on Linux.
    const int fd = g_listen_fd.load(std::memory_order_acquire);
    if (fd >= 0) shutdown(fd, SHUT_RDWR);
    // stdio mode: fgets(stdin) watches no flag, so poke the reader with
    // SIGUSR1 until it reports done. The retry loop closes the race
    // where a poke lands between the reader's drain-check and its next
    // read(2) — the next poke interrupts that read.
    while (g_stdio_reader_set.load(std::memory_order_acquire) &&
           !g_stdio_done.load(std::memory_order_acquire)) {
      pthread_kill(g_stdio_reader, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

/// Serializes model reloads onto one lifecycle thread. Loading and
/// kernel compilation happen here — never on a scoring worker and never
/// on a connection's reader thread — so a reload (even a slow or failing
/// one) cannot stall scoring. Requests come from `!reload` lines (each
/// gets a future resolving to its OK/ERR response line) and from SIGHUP
/// (fire-and-forget; the outcome is logged to stderr).
class ReloadCoordinator {
 public:
  ReloadCoordinator(std::shared_ptr<spe::lifecycle::ModelRegistry> registry,
                    std::string default_path, std::size_t fallback_width)
      : registry_(std::move(registry)),
        default_path_(std::move(default_path)),
        fallback_width_(fallback_width),
        reloads_total_(spe::obs::MetricsRegistry::Global().GetCounter(
            "spe_lifecycle_reloads_total")),
        reload_failures_total_(spe::obs::MetricsRegistry::Global().GetCounter(
            "spe_lifecycle_reload_failures_total")),
        worker_([this] { Loop(); }) {}

  ~ReloadCoordinator() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  /// Enqueues a reload of `path` ("" = the --model artifact). The
  /// future resolves to the protocol response line.
  std::future<std::string> Request(std::string path) {
    Job job;
    job.path = path.empty() ? default_path_ : std::move(path);
    std::future<std::string> future = job.done.get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_all();
    return future;
  }

  /// Callback flavor for the event loop: `done` is invoked with the
  /// response line on the lifecycle thread once the swap happened.
  void RequestAsync(std::string path, std::function<void(std::string)> done) {
    Job job;
    job.path = path.empty() ? default_path_ : std::move(path);
    job.callback = std::move(done);
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_all();
  }

 private:
  struct Job {
    std::string path;
    std::promise<std::string> done;
    std::function<void(std::string)> callback;  // event-loop jobs
    bool log_only = false;  // SIGHUP jobs have no client to answer
  };

  void Loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        // The timeout doubles as the SIGHUP poll interval: the handler
        // may only flip an atomic, so someone has to look at it.
        cv_.wait_for(lock, std::chrono::milliseconds(200),
                     [&] { return stop_ || !jobs_.empty(); });
        if (g_sighup.exchange(false, std::memory_order_relaxed)) {
          Job hup;
          hup.path = default_path_;
          hup.log_only = true;
          jobs_.push_back(std::move(hup));
        }
        if (jobs_.empty()) {
          if (stop_) break;
          continue;
        }
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      const std::string response = Reload(job.path);
      if (job.log_only) {
        std::fprintf(stderr, "spe_serve: SIGHUP reload: %s\n",
                     response.c_str());
      } else if (job.callback) {
        job.callback(response);
      } else {
        job.done.set_value(response);
      }
    }
  }

  std::string Reload(const std::string& path) {
    spe::lifecycle::ModelRegistry::LoadResult result =
        registry_->LoadFromFile(path, fallback_width_);
    if (!result.ok()) {
      reload_failures_total_.Add();
      return "ERR reload failed: " + result.error;
    }
    const std::string error = registry_->Activate(result.version);
    if (!error.empty()) {
      reload_failures_total_.Add();
      return "ERR reload refused: " + error;
    }
    reloads_total_.Add();
    return "OK reloaded version " +
           std::to_string(result.version->version()) + " from " + path +
           " kernel=" + result.version->kernel() +
           (result.version->drift() != nullptr ? " drift=on" : " drift=off");
  }

  const std::shared_ptr<spe::lifecycle::ModelRegistry> registry_;
  const std::string default_path_;
  const std::size_t fallback_width_;
  spe::obs::Counter& reloads_total_;
  spe::obs::Counter& reload_failures_total_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  bool stop_ = false;
  std::thread worker_;
};

/// Reads one newline-terminated request line into `line`, enforcing the
/// protocol's line-length cap without ever buffering an oversized line
/// whole: the overflow is consumed and discarded in fixed-size chunks.
/// Returns false on EOF with nothing read; sets `oversized` when the
/// line exceeded the cap (its content is then meaningless).
bool ReadBoundedLine(std::FILE* in, std::string& line, bool& oversized) {
  line.clear();
  oversized = false;
  char chunk[4096];
  while (std::fgets(chunk, sizeof(chunk), in) != nullptr) {
    const std::size_t len = std::strlen(chunk);
    const bool eol = len > 0 && chunk[len - 1] == '\n';
    if (!oversized) {
      line.append(chunk, len);
      if (line.size() > spe::kMaxRequestLineBytes + 2) {
        // +2: allow the CR/LF of a line exactly at the cap.
        oversized = true;
        line.clear();
      }
    }
    if (eol) return true;
  }
  return oversized || !line.empty();
}

/// One protocol session on a FILE* pair. The calling thread reads,
/// parses and submits; a writer thread emits responses in request
/// order. Returns when `in` hits EOF and every response is written.
/// `default_deadline_ms` <= 0 means "no deadline unless the request
/// sets one".
void ServeSession(std::FILE* in, std::FILE* out, spe::BatchScorer& scorer,
                  ReloadCoordinator& reloader, double default_deadline_ms) {
  struct Pending {
    spe::ServeRequest request;
    std::future<spe::ScoreResult> future;       // valid only for kScore
    std::future<std::string> reload_response;   // valid only for kReload
  };
  std::deque<Pending> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool done_reading = false;
  // Requests read but not yet answered (queued here or being written).
  // The reload barrier below waits on this, not on pending.empty():
  // the writer pops an item before resolving its future, so an empty
  // queue can still have one request in flight inside the scorer.
  std::size_t inflight = 0;

  std::thread writer([&] {
    for (;;) {
      Pending item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) break;
        item = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the backlog bound
      std::string response;
      switch (item.request.kind) {
        case spe::RequestKind::kScore:
          try {
            const spe::ScoreResult result = item.future.get();
            response = spe::FormatScoreResponse(item.request, result.proba,
                                                result.degraded);
          } catch (const std::exception& e) {
            response = spe::FormatErrorResponse(item.request, e.what());
          }
          break;
        case spe::RequestKind::kStats:
          response = spe::ToJson(scorer.stats().Snapshot());
          break;
        case spe::RequestKind::kMetrics:
          // Multi-line exposition; its "# EOF" line is the framing the
          // client watches for, the writer adds the final newline.
          response = spe::obs::MetricsRegistry::Global().RenderText();
          while (!response.empty() && response.back() == '\n') {
            response.pop_back();
          }
          break;
        case spe::RequestKind::kReload:
          // Waiting here (the writer thread) is what makes the OK/ERR
          // line land in request order without ever pausing scoring:
          // requests already submitted keep flowing through the
          // workers, and responses queued behind this one are for
          // requests that were *read* after the reload was requested.
          response = item.reload_response.get();
          break;
        case spe::RequestKind::kInvalid:
          response = spe::FormatErrorResponse(item.request,
                                              item.request.error);
          break;
        case spe::RequestKind::kEmpty:
          continue;  // never queued
      }
      std::fputs(response.c_str(), out);
      std::fputc('\n', out);
      std::fflush(out);
      {
        std::lock_guard<std::mutex> lock(mu);
        --inflight;
      }
      cv.notify_all();
    }
  });

  std::string line;
  bool oversized = false;
  for (;;) {
    if (g_draining.load(std::memory_order_acquire)) break;
    if (!ReadBoundedLine(in, line, oversized)) break;
    // A drain signal may interrupt fgets mid-line (SIGUSR1 → EINTR);
    // scoring that truncated request would answer garbage, so a line
    // without its newline is dropped once draining. Outside a drain a
    // final unterminated line (EOF without '\n') still counts.
    const bool complete =
        oversized || (!line.empty() && line.back() == '\n');
    if (!complete && g_draining.load(std::memory_order_acquire)) break;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    Pending item;
    if (oversized) {
      item.request.kind = spe::RequestKind::kInvalid;
      item.request.error = "request line exceeds " +
                           std::to_string(spe::kMaxRequestLineBytes) +
                           " bytes";
    } else {
      item.request = spe::ParseRequestLine(line);
    }
    if (item.request.kind == spe::RequestKind::kEmpty) continue;
    if (item.request.kind == spe::RequestKind::kReload) {
      // Barrier semantics within this connection: every request read
      // *before* the `!reload` line is answered — scored on the
      // pre-swap version — before the swap is even requested, and
      // requests after it score on the outcome of the reload (new
      // version, or old one if it was refused). The drain matters:
      // rows still queued inside the scorer at swap time would
      // otherwise score on the new version, making the swap boundary
      // nondeterministic for the one client that asked for it. Both
      // waits block only this session's reader — other connections
      // keep scoring on the version their batches snapshotted, so the
      // swap still drops nothing.
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return inflight == 0; });
      }
      item.reload_response = reloader.Request(item.request.reload_path);
      item.reload_response.wait();
    }
    if (item.request.kind == spe::RequestKind::kScore) {
      if (item.request.features.size() != scorer.num_features()) {
        item.request.kind = spe::RequestKind::kInvalid;
        item.request.error =
            "expected " + std::to_string(scorer.num_features()) +
            " features, got " + std::to_string(item.request.features.size());
      } else {
        const double deadline_ms = item.request.deadline_ms >= 0
                                       ? item.request.deadline_ms
                                       : default_deadline_ms;
        auto deadline = spe::BatchScorer::kNoDeadline;
        if (item.request.deadline_ms >= 0 || default_deadline_ms > 0) {
          deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             deadline_ms));
        }
        item.future =
            scorer.Submit(std::move(item.request.features), deadline);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      // Bound the per-session response backlog so a client that writes
      // but never reads cannot grow memory without limit.
      cv.wait(lock, [&] { return pending.size() < 16384; });
      pending.push_back(std::move(item));
      ++inflight;
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done_reading = true;
  }
  cv.notify_all();
  writer.join();
}

int RunStdio(spe::BatchScorer& scorer, ReloadCoordinator& reloader,
             double default_deadline_ms) {
  // Register with the signal thread before reading, and re-check the
  // drain flag after: a signal that fired in between was handled by a
  // poke loop that saw no reader, so the check is what honors it.
  g_stdio_reader = pthread_self();
  g_stdio_reader_set.store(true, std::memory_order_release);
  if (!g_draining.load(std::memory_order_acquire)) {
    ServeSession(stdin, stdout, scorer, reloader, default_deadline_ms);
  }
  g_stdio_done.store(true, std::memory_order_release);
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

int RunTcp(spe::BatchScorer& scorer, ReloadCoordinator& reloader,
           const std::string& host, int port, double default_deadline_ms,
           std::size_t max_connections) {
  spe::serve::EventLoopConfig config;
  config.max_connections = max_connections;
  config.default_deadline_ms = default_deadline_ms;
  spe::serve::EventLoop loop(
      scorer, config,
      [&reloader](std::string path, std::function<void(std::string)> done) {
        reloader.RequestAsync(std::move(path), std::move(done));
      });
  const std::string error = loop.Listen(host, port);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_listen_fd.store(loop.listen_fd(), std::memory_order_release);
  // A signal that landed before the store found no fd to shut down;
  // honor it now rather than serving forever.
  if (g_draining.load(std::memory_order_acquire)) loop.RequestDrain();
  std::fprintf(stderr, "spe_serve: listening on %s:%d\n", host.c_str(),
               loop.port());
  // The signal thread drains the loop the same way it drained the old
  // blocking accept(2): shutdown(2) on the listener, which the loop
  // observes as a failing accept. Run() returns once every accepted
  // request is answered and every connection closed.
  loop.Run();
  g_listen_fd.store(-1, std::memory_order_release);
  std::fprintf(stderr, "spe_serve: draining...\n");
  const auto& counters = loop.counters();
  if (counters.refused.load(std::memory_order_relaxed) > 0) {
    std::fprintf(stderr, "spe_serve: refused %llu connections at capacity\n",
                 static_cast<unsigned long long>(
                     counters.refused.load(std::memory_order_relaxed)));
  }
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Signal setup must precede every thread spawn (scorer workers, the
  // reload coordinator, the stats reporter, session threads) so they
  // all inherit the blocked mask and only the signal thread ever sees
  // SIGINT/SIGTERM/SIGHUP. The thread is detached: at a signal-free
  // shutdown (stdin EOF) it is still parked in sigwait, and process
  // exit reaps it — it touches only globals, never the stack.
  sigset_t blocked;
  sigemptyset(&blocked);
  sigaddset(&blocked, SIGINT);
  sigaddset(&blocked, SIGTERM);
  sigaddset(&blocked, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &blocked, nullptr);
  {
    struct sigaction wake {};
    wake.sa_handler = HandleWakeSignal;
    sigemptyset(&wake.sa_mask);
    wake.sa_flags = 0;  // no SA_RESTART: the EINTR is the whole point
    sigaction(SIGUSR1, &wake, nullptr);
  }
  std::signal(SIGPIPE, SIG_IGN);
  std::thread(SignalWaitLoop).detach();

  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) Usage(("unexpected argument: " + arg).c_str());
    const std::string key = arg.substr(2);
    std::string value = "1";
    if (key != "stdio") {
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      value = argv[++i];
    }
    // A silently ignored repeat is how a fat-fingered restart script
    // serves yesterday's queue capacity; make duplicates loud.
    if (!flags.emplace(key, value).second) {
      Usage(("duplicate flag --" + key).c_str());
    }
  }
  const auto get = [&](const std::string& k, const std::string& fallback) {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : it->second;
  };

  const std::string model_path = get("model", "");
  if (model_path.empty()) Usage("--model is required");
  const bool use_stdio = flags.count("stdio") > 0;
  const int port = static_cast<int>(GetIntFlag(flags, "port", 0, 1, 65535));
  if (use_stdio == (port > 0)) Usage("pass exactly one of --stdio / --port");

  spe::BatchScorerConfig config;
  config.max_batch_size = static_cast<std::size_t>(
      GetIntFlag(flags, "max-batch", 256, 1, 1 << 20));
  config.max_batch_delay_us = static_cast<std::size_t>(
      GetIntFlag(flags, "max-delay-us", 200, 0, 60'000'000));
  config.num_workers =
      static_cast<std::size_t>(GetIntFlag(flags, "workers", 0, 0, 4096));
  config.queue_capacity = static_cast<std::size_t>(
      GetIntFlag(flags, "queue-capacity", 4096, 1, 1 << 26));
  const std::string overflow = get("overflow", "block");
  if (overflow == "shed") {
    config.overflow = spe::OverflowPolicy::kShed;
  } else if (overflow != "block") {
    Usage("--overflow must be block or shed");
  }
  config.degrade_high_watermark = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-high", 0, 0, 1 << 26));
  config.degrade_low_watermark = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-low", 0, 0, 1 << 26));
  config.degrade_prefix = static_cast<std::size_t>(
      GetIntFlag(flags, "degrade-prefix", 1, 1, 1 << 20));
  if (config.degrade_high_watermark > 0 &&
      config.degrade_low_watermark >= config.degrade_high_watermark) {
    Usage("--degrade-low must be below --degrade-high");
  }
  const double default_deadline_ms =
      GetDoubleFlag(flags, "default-deadline-ms", 0.0, 0.0);
  const std::size_t max_connections = static_cast<std::size_t>(
      GetIntFlag(flags, "max-connections", 256, 0, 1 << 20));
  config.shadow_every = static_cast<std::size_t>(
      GetIntFlag(flags, "shadow-sample", 8, 0, 1 << 20));

  // Fail fast on an unwritable dump target: discovering it only at
  // drain time throws away the run's metrics after the fact.
  const std::string dump_path = get("metrics-dump", "");
  if (!dump_path.empty()) {
    std::FILE* probe = std::fopen(dump_path.c_str(), "a");
    if (probe == nullptr) {
      Usage(("--metrics-dump path is not writable: " + dump_path).c_str());
    }
    std::fclose(probe);
  }

  spe::lifecycle::DriftConfig drift;
  drift.psi_threshold = GetDoubleFlag(flags, "drift-threshold", 0.25, 1e-9);
  drift.min_samples = static_cast<std::uint64_t>(
      GetIntFlag(flags, "drift-min-count", 512, 1, 1L << 40));

  // Bundles (spe_cli train output) record the row width; bare spe-model
  // artifacts predate the header and need --num-features.
  const long num_features_flag =
      GetIntFlag(flags, "num-features", 0, 1, 1 << 24);
  const std::size_t fallback_width =
      num_features_flag > 0 ? static_cast<std::size_t>(num_features_flag) : 0;

  // Mode before load: ModelVersion resolves its kernel label (what
  // !stats and reload logs report) once at load time, so the scoring
  // representation must be active when the registry compiles the model.
  const std::string kernel_mode = get("kernel-mode", "f64");
  {
    spe::kernels::ScoreMode mode;
    if (!spe::kernels::ParseScoreMode(kernel_mode, &mode)) {
      Usage("--kernel-mode must be f64, f32 or binned");
    }
    spe::kernels::SetScoreMode(mode);
  }

  auto registry = std::make_shared<spe::lifecycle::ModelRegistry>(drift);
  {
    const auto loaded = registry->LoadFromFile(model_path, fallback_width);
    if (!loaded.ok()) {
      if (loaded.error.find("no schema header") != std::string::npos) {
        Usage("model artifact has no schema header; pass --num-features");
      }
      std::fprintf(stderr, "error: cannot load --model %s: %s\n",
                   model_path.c_str(), loaded.error.c_str());
      return spe::ClassifyArtifactErrorExit(loaded.error);
    }
    const std::string error = registry->Activate(loaded.version);
    if (!error.empty()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return spe::kExitRuntime;
    }
  }
  const std::string shadow_path = get("shadow", "");
  if (!shadow_path.empty()) {
    const auto loaded = registry->LoadFromFile(shadow_path, fallback_width);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: cannot load --shadow %s: %s\n",
                   shadow_path.c_str(), loaded.error.c_str());
      return spe::ClassifyArtifactErrorExit(loaded.error);
    }
    if (loaded.version->num_features() !=
        registry->active()->num_features()) {
      std::fprintf(stderr,
                   "error: --shadow feature width %zu does not match the "
                   "model's %zu\n",
                   loaded.version->num_features(),
                   registry->active()->num_features());
      return 1;
    }
    registry->SetShadow(loaded.version);
  }

  spe::BatchScorer scorer(registry, config);
  ReloadCoordinator reloader(registry, model_path, fallback_width);
  const long interval_ms =
      GetIntFlag(flags, "stats-interval-ms", use_stdio ? 0 : 10000, 0,
                 86'400'000);
  std::unique_ptr<spe::StatsReporter> reporter;
  if (interval_ms > 0) {
    reporter = std::make_unique<spe::StatsReporter>(
        scorer.stats(), std::cerr, std::chrono::milliseconds(interval_ms));
  }
  const int rc = use_stdio
                     ? RunStdio(scorer, reloader, default_deadline_ms)
                     : RunTcp(scorer, reloader, get("host", "127.0.0.1"),
                              port, default_deadline_ms, max_connections);
  // Drained: every accepted request is counted, so the dump is final.
  if (!dump_path.empty()) {
    std::FILE* f = std::fopen(dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --metrics-dump %s\n",
                   dump_path.c_str());
      return spe::kExitIo;
    }
    const std::string text = spe::obs::MetricsRegistry::Global().RenderText();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return rc;
}
