// spe_serve — online scoring server over a saved model.
//
//   spe_serve --model FILE [--stdio | --port P] [--host ADDR]
//             [--max-batch N] [--max-delay-us U] [--workers W]
//             [--queue-capacity C] [--overflow block|shed]
//             [--stats-interval-ms MS]
//
// Speaks the newline-delimited CSV/JSON protocol of spe/serve/
// line_protocol.h. --stdio serves exactly one "connection" on
// stdin/stdout (what tests and shell pipelines use); --port accepts any
// number of concurrent TCP connections, each handled by a reader thread
// (parse + submit) and a writer thread (responses in request order), all
// funneling into one shared BatchScorer so cross-connection traffic
// coalesces into common micro-batches.
//
// Shutdown drains: on SIGINT/SIGTERM (or stdin EOF) the listener closes,
// connections stop reading, every accepted request is still scored and
// written, and a final stats snapshot goes to stderr.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "spe/io/model_io.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/server_stats.h"

namespace {

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(
      stderr,
      "usage: spe_serve --model FILE [--stdio | --port P] [options]\n"
      "  --model FILE          saved model (spe_cli train --model FILE)\n"
      "  --stdio               serve one session on stdin/stdout\n"
      "  --port P              listen for TCP connections on port P\n"
      "  --host ADDR           bind address (default 127.0.0.1)\n"
      "  --max-batch N         rows per model dispatch (default 256)\n"
      "  --max-delay-us U      micro-batch fill deadline (default 200)\n"
      "  --workers W           scoring threads (default: hardware)\n"
      "  --queue-capacity C    pending-request bound (default 4096)\n"
      "  --overflow block|shed backpressure policy (default block)\n"
      "  --stats-interval-ms M periodic stats line to stderr (0 = off,\n"
      "                        default 10000 for --port, 0 for --stdio)\n"
      "protocol: one request per line — CSV features (`0.2,1.5`) or JSON\n"
      "(`{\"id\":1,\"features\":[0.2,1.5]}`); `STATS` returns a stats\n"
      "snapshot; responses come back one line each, in request order.\n");
  std::exit(2);
}

std::atomic<int> g_listen_fd{-1};

void HandleStopSignal(int /*sig*/) {
  // close() is async-signal-safe; closing the listener pops accept()
  // out with an error, which the accept loop treats as "stop".
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) close(fd);
}

/// One protocol session on a FILE* pair. The calling thread reads,
/// parses and submits; a writer thread emits responses in request
/// order. Returns when `in` hits EOF and every response is written.
void ServeSession(std::FILE* in, std::FILE* out, spe::BatchScorer& scorer) {
  struct Pending {
    spe::ServeRequest request;
    std::future<double> future;  // valid only for kScore
  };
  std::deque<Pending> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool done_reading = false;

  std::thread writer([&] {
    for (;;) {
      Pending item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) break;
        item = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the backlog bound
      std::string response;
      switch (item.request.kind) {
        case spe::RequestKind::kScore:
          try {
            response = spe::FormatScoreResponse(item.request,
                                                item.future.get());
          } catch (const std::exception& e) {
            response = spe::FormatErrorResponse(item.request, e.what());
          }
          break;
        case spe::RequestKind::kStats:
          response = spe::ToJson(scorer.stats().Snapshot());
          break;
        case spe::RequestKind::kInvalid:
          response = spe::FormatErrorResponse(item.request,
                                              item.request.error);
          break;
        case spe::RequestKind::kEmpty:
          continue;  // never queued
      }
      std::fputs(response.c_str(), out);
      std::fputc('\n', out);
      std::fflush(out);
    }
  });

  char* line = nullptr;
  std::size_t cap = 0;
  ssize_t len = 0;
  while ((len = getline(&line, &cap, in)) != -1) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    Pending item;
    item.request =
        spe::ParseRequestLine(std::string_view(line, static_cast<size_t>(len)));
    if (item.request.kind == spe::RequestKind::kEmpty) continue;
    if (item.request.kind == spe::RequestKind::kScore) {
      if (item.request.features.size() != scorer.num_features()) {
        item.request.kind = spe::RequestKind::kInvalid;
        item.request.error =
            "expected " + std::to_string(scorer.num_features()) +
            " features, got " + std::to_string(item.request.features.size());
      } else {
        item.future = scorer.Submit(std::move(item.request.features));
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      // Bound the per-session response backlog so a client that writes
      // but never reads cannot grow memory without limit.
      cv.wait(lock, [&] { return pending.size() < 16384; });
      pending.push_back(std::move(item));
    }
    cv.notify_all();
  }
  std::free(line);
  {
    std::lock_guard<std::mutex> lock(mu);
    done_reading = true;
  }
  cv.notify_all();
  writer.join();
}

int RunStdio(spe::BatchScorer& scorer) {
  ServeSession(stdin, stdout, scorer);
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

int RunTcp(spe::BatchScorer& scorer, const std::string& host, int port) {
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad --host %s\n", host.c_str());
    return 1;
  }
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "spe_serve: listening on %s:%d\n", host.c_str(), port);

  std::mutex conn_mu;
  std::set<int> open_fds;
  std::vector<std::thread> sessions;
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by the signal handler
    {
      const std::lock_guard<std::mutex> lock(conn_mu);
      open_fds.insert(fd);
    }
    sessions.emplace_back([fd, &scorer, &conn_mu, &open_fds] {
      // Separate FILE streams for the two directions; each owns a dup
      // so fclose of one cannot yank the fd from under the other.
      std::FILE* in = fdopen(fd, "r");
      std::FILE* out = fdopen(dup(fd), "w");
      if (in != nullptr && out != nullptr) ServeSession(in, out, scorer);
      if (in != nullptr) std::fclose(in);
      if (out != nullptr) std::fclose(out);
      const std::lock_guard<std::mutex> lock(conn_mu);
      open_fds.erase(fd);
    });
  }
  std::fprintf(stderr, "spe_serve: draining...\n");
  {
    // Stop the readers: half-close every open connection so getline
    // sees EOF; in-flight requests still get their responses.
    const std::lock_guard<std::mutex> lock(conn_mu);
    for (int fd : open_fds) shutdown(fd, SHUT_RD);
  }
  for (auto& s : sessions) s.join();
  scorer.Shutdown();
  std::fprintf(stderr, "%s\n", spe::ToJson(scorer.stats().Snapshot()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) Usage(("unexpected argument: " + arg).c_str());
    const std::string key = arg.substr(2);
    if (key == "stdio") {
      flags.emplace(key, "1");
    } else {
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      flags.emplace(key, argv[++i]);
    }
  }
  const auto get = [&](const std::string& k, const std::string& fallback) {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : it->second;
  };

  const std::string model_path = get("model", "");
  if (model_path.empty()) Usage("--model is required");
  const bool use_stdio = flags.count("stdio") > 0;
  const int port = std::atoi(get("port", "0").c_str());
  if (use_stdio == (port > 0)) Usage("pass exactly one of --stdio / --port");

  spe::BatchScorerConfig config;
  config.max_batch_size =
      static_cast<std::size_t>(std::atol(get("max-batch", "256").c_str()));
  config.max_batch_delay_us =
      static_cast<std::size_t>(std::atol(get("max-delay-us", "200").c_str()));
  config.num_workers =
      static_cast<std::size_t>(std::atol(get("workers", "0").c_str()));
  config.queue_capacity = static_cast<std::size_t>(
      std::atol(get("queue-capacity", "4096").c_str()));
  const std::string overflow = get("overflow", "block");
  if (overflow == "shed") {
    config.overflow = spe::OverflowPolicy::kShed;
  } else if (overflow != "block") {
    Usage("--overflow must be block or shed");
  }

  spe::ModelBundle bundle = spe::LoadModelBundleFromFile(model_path);
  // Bundles (spe_cli train output) record the row width; bare spe-model
  // artifacts predate the header and need --num-features.
  long num_features = std::atol(get("num-features", "0").c_str());
  if (num_features <= 0) num_features = static_cast<long>(bundle.num_features);
  if (num_features <= 0) {
    Usage("model artifact has no schema header; pass --num-features");
  }

  spe::BatchScorer scorer(std::move(bundle.model),
                          static_cast<std::size_t>(num_features), config);
  const long interval_ms = std::atol(
      get("stats-interval-ms", use_stdio ? "0" : "10000").c_str());
  std::unique_ptr<spe::StatsReporter> reporter;
  if (interval_ms > 0) {
    reporter = std::make_unique<spe::StatsReporter>(
        scorer.stats(), std::cerr, std::chrono::milliseconds(interval_ms));
  }
  return use_stdio ? RunStdio(scorer) : RunTcp(scorer, get("host", "127.0.0.1"), port);
}
