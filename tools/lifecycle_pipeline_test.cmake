# End-to-end lifecycle pipeline, run by ctest (`cmake -P`, no shell):
#   1. train two model bundles A and B with spe_cli
#   2. spe_cli inspect prints the v3 manifest (format, checksum,
#      hardness histogram) for a bundle
#   3. record standalone truth: serve A alone and B alone over the same
#      rows
#   4. one serving session scores rows on A, hot-swaps to B with
#      `!reload` mid-stream, scores the same rows again: zero errors,
#      responses before the swap byte-identical to A standalone and
#      after it to B standalone, and the metrics dump shows the version
#      flip, the reload count, and populated shadow/drift counters
#   5. an unwritable --metrics-dump path is a startup usage error, not a
#      drain-time surprise

foreach(var SPE_CLI SPE_SERVE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/lifecycle_pipeline_test)
file(MAKE_DIRECTORY ${dir})

# ---- 1. train bundles A and B -----------------------------------------
# Same schema, different seeds. The classes overlap (positives and
# negatives share coordinates), so leaf purities — and therefore scores —
# depend on which majority subset the seed sampled: the two models
# disagree on most rows, and a response tells us unambiguously which
# version scored it.
set(csv "")
foreach(i RANGE 0 59)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "${a}.5,${b}.25,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

foreach(pair "a;1" "b;2")
  list(GET pair 0 name)
  list(GET pair 1 seed)
  execute_process(
    COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --seed ${seed}
      --model ${dir}/${name}.model
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "spe_cli train ${name} failed (${rc}): ${out} ${err}")
  endif()
endforeach()

# ---- 2. inspect prints the v3 manifest --------------------------------
execute_process(
  COMMAND ${SPE_CLI} inspect --model ${dir}/a.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli inspect failed (${rc}): ${err}")
endif()
foreach(want "spe-bundle v3" "crc32" "verified" "hardness_histogram")
  if(NOT out MATCHES "${want}")
    message(FATAL_ERROR "inspect output missing \"${want}\": ${out}")
  endif()
endforeach()

# ---- 3. standalone truth per version ----------------------------------
set(rows "")
foreach(i RANGE 0 11)
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  string(APPEND rows "${a}.5,-${b}.75\n")
endforeach()
file(WRITE ${dir}/rows.txt "${rows}")

foreach(name a b)
  execute_process(
    COMMAND ${SPE_SERVE} --model ${dir}/${name}.model --stdio --workers 1
    INPUT_FILE ${dir}/rows.txt
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "standalone serve of ${name} failed (${rc}): ${err}")
  endif()
  set(truth_${name} "${out}")
endforeach()
if(truth_a STREQUAL truth_b)
  message(FATAL_ERROR "models a and b score identically; swap is untestable")
endif()

# ---- 4. hot-swap mid-stream -------------------------------------------
# Version numbering inside the session: 1 = a.model (startup), 2 =
# b.model (shadow), 3 = b.model (the reload). Shadowing samples every
# batch so the diff counters must populate even in a short run.
file(WRITE ${dir}/session.txt
  "${rows}!reload ${dir}/b.model\n${rows}")
execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/a.model --stdio --workers 1
    --shadow ${dir}/b.model --shadow-sample 1
    --metrics-dump ${dir}/metrics.txt
  INPUT_FILE ${dir}/session.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hot-swap session failed (${rc}): ${err}")
endif()
if(out MATCHES "ERR")
  message(FATAL_ERROR "hot-swap session answered an error: ${out}")
endif()

string(REGEX REPLACE "\n$" "" trimmed "${out}")
string(REPLACE "\n" ";" lines "${trimmed}")
list(LENGTH lines n)
if(NOT n EQUAL 25)  # 12 rows + reload ack + 12 rows
  message(FATAL_ERROR "expected 25 response lines, got ${n}: ${out}")
endif()

list(GET lines 12 ack)
if(NOT ack MATCHES "^OK reloaded version 3 from .*b\\.model")
  message(FATAL_ERROR "unexpected reload ack: ${ack}")
endif()

# Responses before the swap must be byte-identical to A standalone, and
# after it to B standalone — each batch is scored entirely by one
# version, never a blend.
list(SUBLIST lines 0 12 first_half)
list(SUBLIST lines 13 12 second_half)
string(REPLACE ";" "\n" first_half "${first_half}")
string(REPLACE ";" "\n" second_half "${second_half}")
if(NOT "${first_half}\n" STREQUAL "${truth_a}")
  message(FATAL_ERROR "pre-swap responses differ from model a standalone:\n${first_half}\nvs\n${truth_a}")
endif()
if(NOT "${second_half}\n" STREQUAL "${truth_b}")
  message(FATAL_ERROR "post-swap responses differ from model b standalone:\n${second_half}\nvs\n${truth_b}")
endif()

file(READ ${dir}/metrics.txt metrics)
foreach(want
    "spe_lifecycle_active_version 3"
    "spe_lifecycle_versions_loaded 3"
    "spe_lifecycle_reloads_total 1"
    "spe_lifecycle_loads_total 3"
    "spe_lifecycle_load_failures_total 0"
    "spe_lifecycle_shadow_version 2"
    "spe_lifecycle_shadow_batches_total [1-9]"
    "spe_lifecycle_shadow_rows_total [1-9]"
    "spe_lifecycle_drift_observed [1-9]"
    "spe_lifecycle_drift_alert 0"
    "spe_serve_requests_total 24")
  if(NOT metrics MATCHES "${want}")
    message(FATAL_ERROR "metrics dump missing \"${want}\":\n${metrics}")
  endif()
endforeach()

# A refused reload (broken candidate) must answer ERR and keep serving.
file(WRITE ${dir}/broken.model "not a model\n")
file(WRITE ${dir}/refused.txt "1.5,-0.75\n!reload ${dir}/broken.model\n1.5,-0.75\n")
execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/a.model --stdio --workers 1
  INPUT_FILE ${dir}/refused.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "refused-reload session failed (${rc}): ${err}")
endif()
string(REGEX REPLACE "\n$" "" trimmed "${out}")
string(REPLACE "\n" ";" lines "${trimmed}")
list(LENGTH lines n)
if(NOT n EQUAL 3)
  message(FATAL_ERROR "expected 3 response lines, got ${n}: ${out}")
endif()
list(GET lines 1 refusal)
if(NOT refusal MATCHES "^ERR reload")
  message(FATAL_ERROR "broken candidate not refused: ${refusal}")
endif()
list(GET lines 0 before)
list(GET lines 2 after)
if(NOT before STREQUAL after)
  message(FATAL_ERROR "refused reload changed the serving model: ${before} vs ${after}")
endif()

# ---- 5. unwritable --metrics-dump is a startup usage error ------------
execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/a.model --stdio
    --metrics-dump ${dir}/no_such_dir/metrics.txt
  INPUT_FILE ${dir}/rows.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--metrics-dump path is not writable")
  message(FATAL_ERROR
    "unwritable dump path not rejected with exit 2: rc=${rc} ${err}")
endif()
if(out MATCHES "^[0-9]")
  message(FATAL_ERROR "server scored rows despite the usage error: ${out}")
endif()

message(STATUS "lifecycle pipeline ok")
