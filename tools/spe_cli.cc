// spe_cli — command-line front end for the library.
//
//   spe_cli train    --data train.csv [--format csv|libsvm]
//                    [--label-column K] [--method SPE|Easy|Cascade]
//                    [--base DT|GBDT10|...] [--n 10] [--bins 20]
//                    [--hardness AE|SE|CE] [--seed 0] --model out.model
//                    [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]
//   spe_cli predict  --data rows.csv --model in.model [--threshold 0.5]
//                    [--scores-only]
//   spe_cli evaluate --data test.csv --model in.model [--threshold 0.5]
//   spe_cli cv       --data train.csv [--folds 5] [--method ...] [...]
//   spe_cli inspect  --model in.model
//
// CSV input: all columns numeric; the label column (default: last)
// holds 0/1. LIBSVM input: standard sparse format.
//
// Everything the subcommands do is plain public API — the tool exists
// so a dataset can be tried without writing C++.
//
// Exit codes follow spe/common/exit_codes.h: 0 ok, 1 runtime error,
// 2 usage, 3 I/O failure, 4 corrupt artifact/checkpoint, 5 injected
// fault (docs/robustness.md).

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spe/checkpoint/checkpoint.h"
#include "spe/classifiers/factory.h"
#include "spe/common/exit_codes.h"
#include "spe/common/parse.h"
#include "spe/common/retry.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/csv.h"
#include "spe/data/libsvm.h"
#include "spe/data/mmap_cache.h"
#include "spe/eval/cross_validation.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/metrics/metrics.h"
#include "spe/serve/batch_scorer.h"

namespace {

[[noreturn]] void Usage(const char* message);

struct Options {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  // Numeric accessors reject what strtol/strtod used to swallow: a
  // `--seed banana` or `--n 10abc` is a usage error, not a silent 0.
  long GetInt(const std::string& key, long fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const auto v = spe::ParseInt64(it->second);
    if (!v || *v < std::numeric_limits<long>::min() ||
        *v > std::numeric_limits<long>::max()) {
      const std::string message =
          "--" + key + " expects an integer, got '" + it->second + "'";
      Usage(message.c_str());
    }
    return static_cast<long>(*v);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const auto v = spe::ParseFiniteDouble(it->second);
    if (!v) {
      const std::string message =
          "--" + key + " expects a finite number, got '" + it->second + "'";
      Usage(message.c_str());
    }
    return *v;
  }
};

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: spe_cli <train|predict|evaluate|cv|inspect> "
               "[--data FILE] [options]\n"
               "  common     --format csv|libsvm (default csv), "
               "--label-column K (csv; default: last)\n"
               "  train      --method SPE|Easy|Cascade (default SPE), "
               "--base NAME (default DT),\n"
               "             --n N (default 10), --bins K (default 20), "
               "--hardness AE|SE|CE,\n"
               "             --seed S, --model OUT (required),\n"
               "             --checkpoint-dir DIR (crash-safe training; "
               "SPE only),\n"
               "             --checkpoint-every N (default 1), --resume\n"
               "  predict    --model IN, --threshold T (default 0.5), "
               "--scores-only\n"
               "  evaluate   --model IN, --threshold T (default 0.5)\n"
               "  cv         --folds F (default 5) + the train options\n"
               "  inspect    --model IN — print the artifact manifest\n"
               "             (format version, schema width, payload bytes,\n"
               "             checksum, members, training hardness "
               "histogram);\n"
               "             --data FILE — report the CSV sidecar cache "
               "state\n"
               "             (valid / stale / corrupt / absent)\n"
               "  csv loads  are cached in a <data>.spmc mmap sidecar; "
               "--no-cache\n"
               "             forces a plain parse\n");
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  if (argc < 2) Usage("missing command");
  Options options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      const std::string message = "unexpected argument: " + arg;
      Usage(message.c_str());
    }
    const std::string key = arg.substr(2);
    std::string value = "1";
    if (key != "scores-only" && key != "resume" && key != "no-cache") {
      if (i + 1 >= argc) {
        const std::string message = "missing value for --" + key;
        Usage(message.c_str());
      }
      value = argv[++i];
    }
    if (!options.flags.emplace(key, value).second) {
      const std::string message = "duplicate flag --" + key;
      Usage(message.c_str());
    }
  }
  return options;
}

spe::Dataset LoadData(const Options& options) {
  const std::string path = options.Get("data", "");
  if (path.empty()) Usage("--data is required");
  // An unreadable data file is an I/O failure (exit 3), not a usage
  // error: the invocation was fine, the filesystem was not. Checked
  // here, before the loaders, whose missing-file path aborts.
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw spe::TransientIoError("cannot open " + path);
    std::fclose(f);
  }
  if (options.Get("format", "csv") == "libsvm") {
    return spe::RetryWithBackoff(spe::RetryPolicy{}, "load " + path,
                                 [&] { return spe::LoadLibsvm(path); });
  }
  // Default label column: the last one. Peek at the header row width by
  // loading with column 0 would be wasteful; LoadCsv needs the index up
  // front, so resolve "last" via a tiny pre-scan.
  long label_column = options.GetInt("label-column", -1);
  if (label_column < 0) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw spe::TransientIoError("cannot open " + path);
    int c = 0;
    long columns = 1;
    while ((c = std::fgetc(f)) != EOF && c != '\n') columns += (c == ',');
    std::fclose(f);
    label_column = columns - 1;
  }
  // CSV goes through the sidecar cache: first load parses and publishes
  // `<path>.spmc`, repeat loads mmap it (same values, no re-parse).
  // --no-cache forces a plain parse and touches no sidecar.
  if (options.flags.count("no-cache") > 0) {
    return spe::RetryWithBackoff(spe::RetryPolicy{}, "load " + path, [&] {
      return spe::LoadCsv(path, static_cast<std::size_t>(label_column));
    });
  }
  return spe::RetryWithBackoff(spe::RetryPolicy{}, "load " + path, [&] {
    return spe::LoadCsvCached(path, static_cast<std::size_t>(label_column));
  });
}

spe::HardnessKind ParseHardness(const std::string& name) {
  if (name == "AE") return spe::HardnessKind::kAbsoluteError;
  if (name == "SE") return spe::HardnessKind::kSquaredError;
  if (name == "CE") return spe::HardnessKind::kCrossEntropy;
  const std::string message = "unknown hardness: " + name;
  Usage(message.c_str());
}

std::unique_ptr<spe::Classifier> BuildMethod(const Options& options) {
  const std::string method = options.Get("method", "SPE");
  const std::string base = options.Get("base", "DT");
  const auto n = static_cast<std::size_t>(options.GetInt("n", 10));
  const auto seed = static_cast<std::uint64_t>(options.GetInt("seed", 0));

  if (method == "SPE") {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = n;
    config.num_bins = static_cast<std::size_t>(options.GetInt("bins", 20));
    config.hardness = ParseHardness(options.Get("hardness", "AE"));
    config.seed = seed;
    return std::make_unique<spe::SelfPacedEnsemble>(
        config, spe::MakeClassifier(base, seed));
  }
  if (method == "Easy") {
    spe::UnderBaggingConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<spe::UnderBagging>(config,
                                               spe::MakeClassifier(base, seed));
  }
  if (method == "Cascade") {
    spe::BalanceCascadeConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<spe::BalanceCascade>(
        config, spe::MakeClassifier(base, seed));
  }
  const std::string message = "unknown method: " + options.Get("method", "");
  Usage(message.c_str());
}

void PrintScores(const char* title, const spe::ScoreSummary& s) {
  std::printf("%s: AUCPRC %.4f  F1 %.4f  G-mean %.4f  MCC %.4f\n", title,
              s.aucprc, s.f1, s.gmean, s.mcc);
}

int Train(const Options& options) {
  const std::string model_path = options.Get("model", "");
  if (model_path.empty()) Usage("train requires --model");
  const spe::Dataset data = LoadData(options);
  std::fprintf(stderr, "training on %s\n", data.Summary().c_str());
  auto model = BuildMethod(options);

  // Crash-safe training (docs/robustness.md): --checkpoint-dir makes
  // Fit publish resumable state every --checkpoint-every iterations;
  // --resume continues from it after a crash.
  const std::string checkpoint_dir = options.Get("checkpoint-dir", "");
  std::string checkpoint_file;
  if (!checkpoint_dir.empty()) {
    auto* spe_model = dynamic_cast<spe::SelfPacedEnsemble*>(model.get());
    if (spe_model == nullptr) {
      Usage("--checkpoint-dir requires --method SPE");
    }
    spe::FitCheckpointOptions checkpoint;
    checkpoint.directory = checkpoint_dir;
    const long every = options.GetInt("checkpoint-every", 1);
    if (every < 1) Usage("--checkpoint-every expects an integer >= 1");
    checkpoint.every = static_cast<std::size_t>(every);
    checkpoint.resume = options.flags.count("resume") > 0;
    ::mkdir(checkpoint_dir.c_str(), 0777);  // EEXIST is the common case
    spe_model->set_checkpoint_options(checkpoint);
    checkpoint_file = spe::checkpoint::CheckpointPath(checkpoint_dir);
    if (checkpoint.resume) {
      // Preflight so a corrupt or mismatched checkpoint maps onto the
      // exit taxonomy instead of aborting inside Fit.
      const std::string reason = spe_model->CheckResumable(data);
      if (!reason.empty()) {
        std::fprintf(stderr, "error: cannot resume: %s\n", reason.c_str());
        return spe::kExitCorruptArtifact;
      }
    }
  } else if (options.flags.count("resume") > 0 ||
             options.flags.count("checkpoint-every") > 0) {
    Usage("--resume and --checkpoint-every require --checkpoint-dir");
  }

  model->Fit(data);
  spe::RetryWithBackoff(spe::RetryPolicy{}, "write " + model_path, [&] {
    spe::SaveModelBundleToFile(*model, data.num_features(), model_path);
  });
  std::fprintf(stderr, "model written to %s\n", model_path.c_str());
  if (!checkpoint_file.empty() && std::remove(checkpoint_file.c_str()) == 0) {
    // The published artifact supersedes the checkpoint; retiring it
    // (manifest first, then its member log) keeps a later run with the
    // same directory from resuming stale state after a config change.
    std::remove(spe::checkpoint::MemberLogPath(checkpoint_file).c_str());
    std::fprintf(stderr, "checkpoint %s retired\n", checkpoint_file.c_str());
  }
  return 0;
}

// Probes `path` and returns the taxonomy exit code for a broken
// artifact, or 0 when it is loadable. Commands probe before loading so
// a corrupt file becomes a classified exit instead of an abort.
int ProbeArtifactOrExitCode(const std::string& path) {
  const spe::BundleProbe probe = spe::ProbeModelBundleFile(path);
  if (probe.ok) return 0;
  std::fprintf(stderr, "error: %s\n", probe.error.c_str());
  return spe::ClassifyArtifactErrorExit(probe.error);
}

int Predict(const Options& options) {
  const std::string model_path = options.Get("model", "");
  if (model_path.empty()) Usage("predict requires --model");
  if (const int rc = ProbeArtifactOrExitCode(model_path)) return rc;
  const spe::Dataset data = LoadData(options);
  auto model = spe::RetryWithBackoff(spe::RetryPolicy{}, "load " + model_path,
                                     [&] { return spe::LoadClassifierFromFile(model_path); });
  // Offline scoring goes through the same batching engine as spe_serve,
  // so there is exactly one dispatch path to keep bit-identical.
  spe::BatchScorer scorer(std::move(model), data.num_features());
  const std::vector<double> probs = scorer.ScoreBatch(data);
  const bool scores_only = options.flags.count("scores-only") > 0;
  const double threshold = options.GetDouble("threshold", 0.5);
  for (double p : probs) {
    if (scores_only) {
      std::printf("%.6f\n", p);
    } else {
      std::printf("%d,%.6f\n", p >= threshold ? 1 : 0, p);
    }
  }
  return 0;
}

int EvaluateCommand(const Options& options) {
  const std::string model_path = options.Get("model", "");
  if (model_path.empty()) Usage("evaluate requires --model");
  if (const int rc = ProbeArtifactOrExitCode(model_path)) return rc;
  const spe::Dataset data = LoadData(options);
  const auto model = spe::RetryWithBackoff(
      spe::RetryPolicy{}, "load " + model_path,
      [&] { return spe::LoadClassifierFromFile(model_path); });
  const std::vector<double> probs = model->PredictProba(data);
  PrintScores("test", spe::Evaluate(data.labels(), probs,
                                    options.GetDouble("threshold", 0.5)));
  const spe::ThresholdSearchResult best =
      spe::BestF1Threshold(data.labels(), probs);
  std::printf("best F1 threshold on this data: %.4f (F1 %.4f)\n",
              best.threshold, best.value);
  return 0;
}

int CrossValidateCommand(const Options& options) {
  const spe::Dataset data = LoadData(options);
  const auto folds = static_cast<std::size_t>(options.GetInt("folds", 5));
  const auto model = BuildMethod(options);
  spe::Rng rng(static_cast<std::uint64_t>(options.GetInt("seed", 0)) + 1);
  const spe::CrossValidationResult result =
      spe::CrossValidate(*model, data, folds, rng);
  for (std::size_t f = 0; f < result.folds.size(); ++f) {
    std::printf("fold %zu", f);
    PrintScores("", result.folds[f]);
  }
  const spe::AggregateScores agg = result.aggregate();
  std::printf("mean: AUCPRC %.4f±%.4f  F1 %.4f±%.4f  G-mean %.4f±%.4f  "
              "MCC %.4f±%.4f\n",
              agg.aucprc.mean, agg.aucprc.std, agg.f1.mean, agg.f1.std,
              agg.gmean.mean, agg.gmean.std, agg.mcc.mean, agg.mcc.std);
  return 0;
}

// Reports the CSV sidecar cache state for --data: whether `<data>.spmc`
// is valid (mmap-reusable), stale (source changed), corrupt, or absent.
int InspectSidecarReport(const Options& options) {
  const std::string path = options.Get("data", "");
  long label_column = options.GetInt("label-column", -1);
  if (label_column < 0) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw spe::TransientIoError("cannot open " + path);
    int c = 0;
    long columns = 1;
    while ((c = std::fgetc(f)) != EOF && c != '\n') columns += (c == ',');
    std::fclose(f);
    label_column = columns - 1;
  }
  const spe::SidecarInfo info =
      spe::InspectSidecar(path, static_cast<std::size_t>(label_column));
  std::printf("data:          %s\n", path.c_str());
  std::printf("sidecar:       %s\n", info.sidecar_path.c_str());
  std::printf("sidecar_state: %s (%s)\n", spe::SidecarStatusName(info.status),
              info.detail.c_str());
  if (info.status == spe::SidecarStatus::kValid) {
    std::printf("sidecar_shape: %zu rows x %zu features\n", info.num_rows,
                info.num_features);
  }
  return 0;
}

int InspectCommand(const Options& options) {
  const std::string model_path = options.Get("model", "");
  if (model_path.empty() && options.flags.count("data") > 0) {
    return InspectSidecarReport(options);
  }
  if (model_path.empty()) Usage("inspect requires --model or --data");
  // Probe first: inspect must describe a broken artifact (that is when
  // an operator reaches for it), not abort on it.
  if (const int rc = ProbeArtifactOrExitCode(model_path)) return rc;
  spe::ModelBundle bundle =
      spe::RetryWithBackoff(spe::RetryPolicy{}, "load " + model_path, [&] {
        return spe::LoadModelBundleFromFile(model_path);
      });
  std::printf("artifact:      %s\n", model_path.c_str());
  if (bundle.format_version == 0) {
    std::printf("format:        spe-model (bare stream, no schema header)\n");
  } else {
    std::printf("format:        spe-bundle v%d\n", bundle.format_version);
  }
  std::printf("model:         %s\n", bundle.model->Name().c_str());
  if (bundle.num_features > 0) {
    std::printf("num_features:  %zu\n", bundle.num_features);
  } else {
    std::printf("num_features:  unknown (serve with --num-features)\n");
  }
  if (bundle.format_version >= 2) {
    std::printf("payload_bytes: %zu\n", bundle.payload_bytes);
    std::printf("crc32:         %s (verified)\n", bundle.crc32_hex.c_str());
  } else {
    std::printf("crc32:         none (legacy artifact; re-save to upgrade)\n");
  }
  std::printf("kernel:        %s\n", spe::kernels::ActiveKernel(*bundle.model));
  if (const auto* voting =
          dynamic_cast<const spe::VotingEnsembleModel*>(bundle.model.get())) {
    const spe::VotingEnsemble& members = voting->members();
    std::map<std::string, std::size_t> by_type;
    for (std::size_t i = 0; i < members.size(); ++i) {
      ++by_type[members.member(i).Name()];
    }
    std::printf("members:       %zu (", members.size());
    bool first = true;
    for (const auto& [name, count] : by_type) {
      std::printf("%s%zu x %s", first ? "" : ", ", count, name.c_str());
      first = false;
    }
    std::printf(")\n");
  }
  const spe::HardnessHistogram& histogram = bundle.hardness_histogram;
  if (histogram.empty()) {
    std::printf("hardness_histogram: none\n");
  } else {
    std::printf("hardness_histogram: %zu bins, kind %s, range [%g, %g], "
                "%llu samples\n",
                histogram.counts.size(), histogram.kind.c_str(),
                histogram.min, histogram.max,
                static_cast<unsigned long long>(histogram.total()));
    std::printf("  counts:");
    for (const std::uint64_t c : histogram.counts) {
      std::printf(" %llu", static_cast<unsigned long long>(c));
    }
    std::printf("\n");
  }
  if (options.flags.count("data") > 0) return InspectSidecarReport(options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Parse(argc, argv);
  try {
    if (options.command == "train") return Train(options);
    if (options.command == "predict") return Predict(options);
    if (options.command == "evaluate") return EvaluateCommand(options);
    if (options.command == "cv") return CrossValidateCommand(options);
    if (options.command == "inspect") return InspectCommand(options);
  } catch (const spe::TransientIoError& error) {
    // Retries already happened (and were logged) wherever the error
    // arose; reaching main means the condition outlived the backoff.
    std::fprintf(stderr, "error: %s\n", error.what());
    return error.injected() ? spe::kExitFault : spe::kExitIo;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return spe::kExitRuntime;
  }
  const std::string message = "unknown command: " + options.command;
  Usage(message.c_str());
}
