// spe_wire_client — binary-protocol scoring client for spe_serve.
//
//   spe_wire_client --port P [--host ADDR] [--f32] [--deadline-ms D]
//                   [--stats] [--metrics] [--reload PATH] [--oversize]
//
// Reads CSV feature rows from stdin (the same lines the text protocol
// accepts), sends each as one binary kScore frame (id = 1-based row
// number) over the frame format of spe/serve/wire.h, and prints one
// line per response: "%.17g" for a score — byte-identical to the text
// protocol's CSV response for the same row — or "ERR <message>" for a
// refusal, which also matches the text protocol line. Control flags
// append a kStats / kMetrics / kReload frame after the rows and print
// the kText body the server answers.
//
// --oversize prepends a frame whose declared payload exceeds the 1 MiB
// cap (the payload is actually sent; the server must discard it in
// chunks without buffering), then sends the rows. The expected refusal
// is "ERR frame payload exceeds ..." while the connection — and every
// row after it — still works.
//
// Requests are written from a separate thread while responses are read
// here, so a request set larger than the socket buffers cannot
// deadlock the pipeline.
//
// Exit codes: 0 all responses received (score errors included — they
// are protocol output, not client failures); 2 the server refused an
// oversized frame (the --oversize probe's expected outcome); 3
// connect/IO failure or a response that cannot be decoded.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "spe/common/parse.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/wire.h"

namespace {

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: spe_wire_client --port P [--host ADDR] [--f32]\n"
               "                       [--deadline-ms D] [--stats]\n"
               "                       [--metrics] [--reload PATH]\n"
               "                       [--oversize]\n"
               "reads CSV rows on stdin, scores them over the binary wire\n"
               "protocol, prints one response line per frame.\n");
  std::exit(2);
}

bool ReadFull(int fd, unsigned char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFull(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = write(fd, buf + put, n - put);
    if (r > 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) Usage(("unexpected argument: " + arg).c_str());
    const std::string key = arg.substr(2);
    std::string value = "1";
    if (key == "port" || key == "host" || key == "deadline-ms" ||
        key == "reload") {
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      value = argv[++i];
    } else if (key != "f32" && key != "stats" && key != "metrics" &&
               key != "oversize") {
      Usage(("unknown flag --" + key).c_str());
    }
    if (!flags.emplace(key, value).second) {
      Usage(("duplicate flag --" + key).c_str());
    }
  }
  const auto it = flags.find("port");
  if (it == flags.end()) Usage("--port is required");
  const auto port = spe::ParseInt64(it->second);
  if (!port || *port < 1 || *port > 65535) Usage("--port expects 1..65535");
  const std::string host =
      flags.count("host") ? flags.at("host") : "127.0.0.1";
  const bool f32 = flags.count("f32") > 0;
  double deadline_ms = -1.0;
  if (flags.count("deadline-ms")) {
    const auto d = spe::ParseFiniteDouble(flags.at("deadline-ms"));
    if (!d || *d < 0) Usage("--deadline-ms expects a non-negative number");
    deadline_ms = *d;
  }

  // Build the whole request stream up front.
  std::string requests;
  std::size_t expected = 0;
  if (flags.count("oversize")) {
    // Declared length one past the cap; the payload really is sent so
    // the server's chunked discard is what keeps the stream framed.
    const std::uint32_t len =
        static_cast<std::uint32_t>(spe::wire::kMaxPayloadBytes + 1);
    spe::wire::AppendHeader(requests, spe::wire::FrameType::kScore, 0, len);
    requests.append(len, '\0');
    ++expected;
  }
  std::string line;
  std::vector<double> features;
  std::uint64_t row = 0;
  for (int ch; (ch = std::fgetc(stdin)) != EOF;) {
    if (ch != '\n') {
      line.push_back(static_cast<char>(ch));
      continue;
    }
    const spe::ServeRequest parsed = spe::ParseRequestLine(line);
    line.clear();
    if (parsed.kind == spe::RequestKind::kEmpty) continue;
    if (parsed.kind != spe::RequestKind::kScore) {
      std::fprintf(stderr, "error: stdin row is not a feature row\n");
      return 2;
    }
    spe::wire::AppendScoreRequest(requests, ++row, parsed.features.data(),
                                  parsed.features.size(), f32, deadline_ms);
    ++expected;
  }
  if (flags.count("stats")) {
    spe::wire::AppendControlRequest(requests, spe::wire::FrameType::kStats);
    ++expected;
  }
  if (flags.count("metrics")) {
    spe::wire::AppendControlRequest(requests, spe::wire::FrameType::kMetrics);
    ++expected;
  }
  if (flags.count("reload")) {
    spe::wire::AppendControlRequest(requests, spe::wire::FrameType::kReload,
                                    flags.at("reload"));
    ++expected;
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 3;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad --host %s\n", host.c_str());
    return 2;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    return 3;
  }

  // Writer thread: a large request set and a slow-reading main thread
  // must not deadlock against full socket buffers in both directions.
  std::thread writer([fd, &requests] {
    if (WriteFull(fd, requests.data(), requests.size())) {
      shutdown(fd, SHUT_WR);
    }
  });

  int rc = 0;
  std::vector<unsigned char> payload;
  for (std::size_t i = 0; i < expected; ++i) {
    unsigned char header_bytes[spe::wire::kHeaderBytes];
    if (!ReadFull(fd, header_bytes, sizeof(header_bytes))) {
      std::fprintf(stderr, "error: connection closed after %zu/%zu responses\n",
                   i, expected);
      rc = 3;
      break;
    }
    const spe::wire::FrameHeader header =
        spe::wire::DecodeHeader(header_bytes);
    if (header.magic != spe::wire::kMagic ||
        header.version != spe::wire::kVersion ||
        header.payload_len > spe::wire::kMaxPayloadBytes) {
      std::fprintf(stderr, "error: response stream lost framing\n");
      rc = 3;
      break;
    }
    payload.resize(header.payload_len);
    if (!ReadFull(fd, payload.data(), payload.size())) {
      std::fprintf(stderr, "error: truncated response payload\n");
      rc = 3;
      break;
    }
    spe::wire::DecodedResponse response;
    const std::string error =
        spe::wire::DecodeResponse(header, payload.data(), response);
    if (!error.empty()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      rc = 3;
      break;
    }
    switch (response.type) {
      case spe::wire::FrameType::kScoreOk:
        std::printf("%.17g\n", response.proba);
        break;
      case spe::wire::FrameType::kError:
        std::printf("ERR %s\n", response.text.c_str());
        if (response.text.rfind("frame payload exceeds", 0) == 0 && rc == 0) {
          rc = 2;  // the --oversize probe's expected refusal
        }
        break;
      case spe::wire::FrameType::kText:
        std::printf("%s\n", response.text.c_str());
        break;
      default:
        break;
    }
  }
  std::fflush(stdout);
  writer.join();
  close(fd);
  return rc;
}
