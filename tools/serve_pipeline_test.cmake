# End-to-end check of the offline->online pipeline, run by ctest:
#   1. write a tiny CSV training set
#   2. spe_cli train -> model bundle
#   3. pipe CSV + JSON + STATS request lines through `spe_serve --stdio`
#   4. assert one response line per request and sane shapes
# Driven with `cmake -P` so it needs no shell beyond what CMake provides.

foreach(var SPE_CLI SPE_SERVE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/serve_pipeline_test)
file(MAKE_DIRECTORY ${dir})

# Two interleaved Gaussian-ish blobs, 1 minority : 4 majority — small
# but enough for a depth-limited tree ensemble to fit something real.
set(csv "")
foreach(i RANGE 0 39)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "-${a}.5,-${b}.75,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --model ${dir}/m.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli train failed (${rc}): ${out} ${err}")
endif()

file(WRITE ${dir}/requests.txt
  "1.5,0.25\n-2.5,-1.75\n{\"id\":7,\"features\":[1.5,0.25]}\nSTATS\nnot,a,number\n")

execute_process(
  COMMAND ${SPE_SERVE} --model ${dir}/m.model --stdio
  INPUT_FILE ${dir}/requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_serve --stdio failed (${rc}): ${err}")
endif()

string(REGEX REPLACE "\n$" "" trimmed "${out}")
string(REPLACE "\n" ";" lines "${trimmed}")
list(LENGTH lines n)
if(NOT n EQUAL 5)
  message(FATAL_ERROR "expected 5 response lines, got ${n}: ${out}")
endif()
list(GET lines 0 l0)
list(GET lines 2 l2)
list(GET lines 3 l3)
list(GET lines 4 l4)
if(NOT l0 MATCHES "^[0-9.eE+-]+$")
  message(FATAL_ERROR "bad CSV score response: ${l0}")
endif()
if(NOT l2 MATCHES "^\\{\"id\":7,\"proba\":")
  message(FATAL_ERROR "bad JSON score response: ${l2}")
endif()
if(NOT l3 MATCHES "rows_per_sec")
  message(FATAL_ERROR "bad STATS response: ${l3}")
endif()
if(NOT l4 MATCHES "^ERR ")
  message(FATAL_ERROR "bad error response: ${l4}")
endif()
message(STATUS "serve pipeline ok: ${trimmed}")
