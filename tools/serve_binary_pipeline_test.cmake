# End-to-end check of the binary wire protocol against the TCP event
# loop, run by ctest:
#   1. train a tiny model
#   2. score rows through `spe_serve --stdio` (text protocol) — the truth
#   3. serve the same model over --port; spe_wire_client scores the same
#      rows over binary frames — the outputs must be byte-identical
#   4. an oversized frame must be refused with the usage exit code while
#      the connection (and every row sent after it) keeps working
#   5. SIGTERM must drain the TCP server to exit 0

foreach(var SPE_CLI SPE_SERVE SPE_WIRE_CLIENT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  message(FATAL_ERROR "bash is required for the binary pipeline test")
endif()

set(dir ${WORK_DIR}/serve_binary_pipeline_test)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

set(csv "")
foreach(i RANGE 0 39)
  math(EXPR parity "${i} % 5")
  math(EXPR a "${i} % 7")
  math(EXPR b "${i} % 3")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.5,${b}.25,1\n")
  else()
    string(APPEND csv "-${a}.5,-${b}.75,0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5
          --model ${dir}/m.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spe_cli train failed (${rc}): ${out} ${err}")
endif()

# Rows with spread-out values; one row of the wrong width to check the
# error taxonomy crosses the protocols identically.
file(WRITE ${dir}/rows.csv
  "1.5,0.25\n-2.5,-1.75\n0.0,0.0\n6.5,2.25\n-0.5,-0.75\n1,2,3\n")

file(WRITE ${dir}/binary.sh
[=[#!/bin/bash
set -u
serve="$1"; client="$2"; dir="$3"
cd "$dir" || exit 90

# ---- text-protocol truth over stdio --------------------------------
"$serve" --model m.model --stdio < rows.csv > truth.txt 2>/dev/null
if [ $? -ne 0 ]; then echo "stdio truth run failed" >&2; exit 91; fi

# ---- start the TCP server (retry across candidate ports) -----------
pid=""
for try in 1 2 3 4 5; do
  port=$((20000 + RANDOM % 30000))
  "$serve" --model m.model --port "$port" 2> err.txt &
  pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening on" err.txt 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  grep -q "listening on" err.txt 2>/dev/null && break
  wait "$pid" 2>/dev/null
  pid=""
done
if [ -z "$pid" ]; then echo "server never came up" >&2; exit 92; fi
( sleep 120; kill -9 "$pid" 2>/dev/null ) < /dev/null > /dev/null 2>&1 &
watchdog=$!

# ---- binary scores must be byte-identical to the text truth --------
"$client" --port "$port" < rows.csv > binary.txt
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "wire client failed ($rc)" >&2; kill -9 "$pid"; exit 93
fi
if ! cmp -s binary.txt truth.txt; then
  echo "binary responses differ from text truth:" >&2
  diff truth.txt binary.txt >&2
  kill -9 "$pid"; exit 94
fi

# ---- oversized frame: refused with exit 2, connection survives -----
"$client" --port "$port" --oversize < rows.csv > oversize.txt
rc=$?
if [ "$rc" -ne 2 ]; then
  echo "oversize probe exited $rc (wanted 2)" >&2; kill -9 "$pid"; exit 95
fi
if ! head -1 oversize.txt | grep -q "^ERR frame payload exceeds"; then
  echo "oversize refusal missing: $(head -1 oversize.txt)" >&2
  kill -9 "$pid"; exit 96
fi
if ! cmp -s <(tail -n +2 oversize.txt) truth.txt; then
  echo "rows after the oversize refusal were not scored identically" >&2
  kill -9 "$pid"; exit 97
fi

# ---- f32 frames score (values may differ: features are rounded) ----
"$client" --port "$port" --f32 --stats < rows.csv > f32.txt
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "f32 client failed ($rc)" >&2; kill -9 "$pid"; exit 98
fi
if ! grep -q "rows_per_sec" f32.txt; then
  echo "binary STATS response missing" >&2; kill -9 "$pid"; exit 99
fi

# ---- SIGTERM drains the TCP server to exit 0 -----------------------
kill -TERM "$pid"
wait "$pid"; rc=$?
kill "$watchdog" 2>/dev/null
if [ "$rc" -ne 0 ]; then
  echo "TCP server exited $rc after SIGTERM (wanted 0)" >&2
  cat err.txt >&2
  exit 100
fi
exit 0
]=])

execute_process(
  COMMAND ${BASH_PROGRAM} ${dir}/binary.sh ${SPE_SERVE} ${SPE_WIRE_CLIENT}
          ${dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "binary pipeline failed (${rc}): ${out} ${err}")
endif()

message(STATUS "binary pipeline ok: binary scores byte-identical to the "
               "text protocol, oversize refused, drain clean")
