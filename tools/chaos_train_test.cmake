# Chaos harness for crash-safe training, run by ctest (`cmake -P`).
# The process under test is *really* killed — SPE_FAULTS=
# crash_at_iteration=N raises SIGKILL inside the trainer right after
# iteration N's checkpoint publishes, so no destructor, flush or
# atexit hook can paper over a torn state. The contract under test
# (docs/robustness.md):
#
#   1. truth: train straight through, no checkpointing involved
#   2. kill chain: SIGKILL the trainer at three distinct iterations
#      (2, 5, 8 of 10), resuming from the checkpoint each time; the
#      final resumed run's artifact must be BYTE-IDENTICAL to truth,
#      and the checkpoint must be retired once the artifact publishes
#   3. same chain under SPE_THREADS=8 with --checkpoint-every 2, so a
#      resume replays an uncheckpointed iteration — still byte-identical
#   4. a corrupted checkpoint and a checkpoint from a different trainer
#      configuration are refused with exit 4 (corrupt artifact)
#   5. injected artifact-write and data-read faults exhaust the retry
#      budget and exit 5 (injected fault); a 50% flaky data read
#      recovers via backoff and exits 0
#   6. --resume without --checkpoint-dir is a usage error (exit 2)

foreach(var SPE_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/chaos_train_test)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# Same deterministic integer-arithmetic dataset as the determinism test:
# 800 rows, 1 minority : 7 majority, learnable but overlapping.
set(csv "")
foreach(i RANGE 0 799)
  math(EXPR parity "${i} % 8")
  math(EXPR a "(${i} * 37) % 83")
  math(EXPR b "(${i} * 53) % 97")
  math(EXPR frac_a "(${i} * 29) % 10")
  math(EXPR frac_b "(${i} * 31) % 10")
  if(parity EQUAL 0)
    string(APPEND csv "${a}.${frac_a},${b}.${frac_b},1\n")
  else()
    math(EXPR a "${a} - 20")
    math(EXPR b "${b} - 30")
    string(APPEND csv "${a}.${frac_a},${b}.${frac_b},0\n")
  endif()
endforeach()
file(WRITE ${dir}/train.csv "${csv}")

# Runs spe_cli expecting a clean exit; FATAL otherwise.
function(run_ok threads faults)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SPE_THREADS=${threads}
            "SPE_FAULTS=${faults}" ${SPE_CLI} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "spe_cli ${ARGN} failed (threads=${threads} faults='${faults}', "
      "rc=${rc}): ${out} ${err}")
  endif()
  set(last_err "${err}" PARENT_SCOPE)
endfunction()

# Runs spe_cli expecting the process to die by SIGKILL at iteration
# `at`; asserts the fault announced itself and a checkpoint survived.
function(run_killed threads at ckpt_dir)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SPE_THREADS=${threads}
            "SPE_FAULTS=crash_at_iteration=${at}" ${SPE_CLI} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "trainer survived crash_at_iteration=${at}: ${out} ${err}")
  endif()
  if(NOT err MATCHES "crash_at_iteration=${at}: killing process")
    message(FATAL_ERROR "kill at ${at} not announced: ${err}")
  endif()
  if(NOT EXISTS ${ckpt_dir}/spe_train.ckpt)
    message(FATAL_ERROR
      "no checkpoint survived the SIGKILL at iteration ${at}")
  endif()
  set(last_err "${err}" PARENT_SCOPE)
endfunction()

# ---- 1. straight-through truth ----------------------------------------
run_ok(1 "" train --data ${dir}/train.csv --n 10 --seed 3
       --model ${dir}/truth.model)

# ---- 2. kill chain at iterations 2, 5, 8 ------------------------------
set(train_args train --data ${dir}/train.csv --n 10 --seed 3
    --model ${dir}/chain.model --checkpoint-dir ${dir}/ckpt --resume)

run_killed(1 2 ${dir}/ckpt ${train_args})
if(NOT last_err MATCHES "training from scratch")
  message(FATAL_ERROR "first run did not start from scratch: ${last_err}")
endif()

run_killed(1 5 ${dir}/ckpt ${train_args})
if(NOT last_err MATCHES "resumed from .* at iteration 3/10")
  message(FATAL_ERROR "second run did not resume at iteration 3: ${last_err}")
endif()

run_killed(1 8 ${dir}/ckpt ${train_args})
if(NOT last_err MATCHES "resumed from .* at iteration 6/10")
  message(FATAL_ERROR "third run did not resume at iteration 6: ${last_err}")
endif()

run_ok(1 "" ${train_args})
if(NOT last_err MATCHES "resumed from .* at iteration 9/10")
  message(FATAL_ERROR "final run did not resume at iteration 9: ${last_err}")
endif()
if(NOT last_err MATCHES "checkpoint .* retired")
  message(FATAL_ERROR "checkpoint not retired after publish: ${last_err}")
endif()
if(EXISTS ${dir}/ckpt/spe_train.ckpt)
  message(FATAL_ERROR "retired checkpoint still on disk")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/truth.model
          ${dir}/chain.model
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "artifact after 3 SIGKILLs + resumes differs from the "
    "straight-through run — the resume determinism contract is broken")
endif()

# ---- 3. SPE_THREADS=8 with --checkpoint-every 2 -----------------------
# Kills at 3 and 7 land one iteration past a checkpoint (2, 6), so each
# resume must *replay* the killed iteration from restored RNG state.
set(train8_args train --data ${dir}/train.csv --n 10 --seed 3
    --model ${dir}/chain8.model --checkpoint-dir ${dir}/ckpt8
    --checkpoint-every 2 --resume)
run_killed(8 3 ${dir}/ckpt8 ${train8_args})
run_killed(8 7 ${dir}/ckpt8 ${train8_args})
if(NOT last_err MATCHES "resumed from .* at iteration 3/10")
  message(FATAL_ERROR
    "kill-at-7 run should have resumed from the iteration-2 checkpoint: "
    "${last_err}")
endif()
run_ok(8 "" ${train8_args})
if(NOT last_err MATCHES "resumed from .* at iteration 7/10")
  message(FATAL_ERROR
    "final run should have resumed from the iteration-6 checkpoint and "
    "replayed iteration 7: ${last_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/truth.model
          ${dir}/chain8.model
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "8-thread kill/resume chain with --checkpoint-every 2 diverged "
    "from the straight-through artifact")
endif()

# ---- 4a. corrupted checkpoint is refused with exit 4 ------------------
run_killed(1 2 ${dir}/ckpt_corrupt train --data ${dir}/train.csv --n 5
           --seed 3 --model ${dir}/c.model
           --checkpoint-dir ${dir}/ckpt_corrupt)
# The payload carries raw binary accumulator bytes, so the corruption
# has to happen at the byte level (CMake's string-based file(READ) +
# file(WRITE) cannot round-trip embedded NULs). Length-preserving bit
# rot: overwrite the third-from-last byte with NUL via dd — the file
# tail is member text, never NUL, so the byte always changes.
execute_process(
  COMMAND bash -c "f='${dir}/ckpt_corrupt/spe_train.ckpt'; \
    pos=$(( $(stat -c %s \"$f\") - 3 )); \
    printf '\\x00' | dd of=\"$f\" bs=1 seek=$pos conv=notrunc status=none"
  RESULT_VARIABLE fliprc)
if(NOT fliprc EQUAL 0)
  message(FATAL_ERROR "byte-flip helper failed: ${fliprc}")
endif()

execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --seed 3
          --model ${dir}/c.model --checkpoint-dir ${dir}/ckpt_corrupt
          --resume
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 4 OR NOT err MATCHES "crc32 mismatch")
  message(FATAL_ERROR
    "corrupt checkpoint must exit 4 with a crc error: rc=${rc} ${err}")
endif()

# ---- 4b. checkpoint from a different config is refused with exit 4 ----
run_killed(1 2 ${dir}/ckpt_mismatch train --data ${dir}/train.csv --n 5
           --seed 3 --model ${dir}/c.model
           --checkpoint-dir ${dir}/ckpt_mismatch)
execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 5 --seed 4
          --model ${dir}/c.model --checkpoint-dir ${dir}/ckpt_mismatch
          --resume
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 4 OR NOT err MATCHES "different trainer configuration")
  message(FATAL_ERROR
    "config-mismatch resume must exit 4: rc=${rc} ${err}")
endif()

# ---- 5. injected I/O faults: exhausted retries exit 5, a flaky read
#         recovers ------------------------------------------------------
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SPE_FAULTS=artifact_write_fail_rate=1
          ${SPE_CLI} train --data ${dir}/train.csv --n 3 --seed 3
          --model ${dir}/w.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 5 OR NOT err MATCHES "injected fault: transient artifact write")
  message(FATAL_ERROR
    "always-failing artifact write must exit 5: rc=${rc} ${err}")
endif()
if(NOT err MATCHES "retrying in")
  message(FATAL_ERROR "write fault was not retried before giving up: ${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SPE_FAULTS=data_io_fail_rate=1
          ${SPE_CLI} train --data ${dir}/train.csv --n 3 --seed 3
          --model ${dir}/w.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 5 OR NOT err MATCHES "injected fault: transient data read")
  message(FATAL_ERROR
    "always-failing data read must exit 5: rc=${rc} ${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "SPE_FAULTS=data_io_fail_rate=0.5,seed=3"
          ${SPE_CLI} train --data ${dir}/train.csv --n 3 --seed 3
          --model ${dir}/flaky.model
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "50% flaky data read should recover via backoff: rc=${rc} ${err}")
endif()
if(NOT EXISTS ${dir}/flaky.model)
  message(FATAL_ERROR "flaky run exited 0 but published no artifact")
endif()

# ---- 6. --resume without --checkpoint-dir is a usage error ------------
execute_process(
  COMMAND ${SPE_CLI} train --data ${dir}/train.csv --n 3
          --model ${dir}/u.model --resume
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "checkpoint-dir")
  message(FATAL_ERROR
    "--resume without --checkpoint-dir must be a usage error: "
    "rc=${rc} ${err}")
endif()

message(STATUS
  "chaos train pipeline ok: 5 SIGKILLs across two chains, every resume "
  "deterministic, final artifacts byte-identical to straight-through")
